//! `dirsim` — command-line front end for the directory-protocol simulator.
//!
//! ```text
//! dirsim run       [--protocol current|synchronous|icps] [--relays N]
//!                  [--bandwidth MBPS] [--seed N] [--real-docs]
//! dirsim attack    [--protocol ...] [--targets K] [--duration SECS]
//!                  [--flood MBPS] [--relays N] [--seed N]
//! dirsim sweep     [--protocol ...] [--relays N] [--seed N]
//! dirsim clients   [--clients N] [--hours H | --days N] [--caches K] [--relays N]
//!                  [--seed N] [--feedback] [--churn C|weekly] [--real-docs]
//!                  [--attribution] [--json]
//! dirsim attribute [--clients N] [--hours H] [--caches K] [--relays N]
//!                  [--seed N] [--feedback] [--json]
//! dirsim adversary [--budget USD] [--hours H] [--beam K] [--clients N]
//!                  [--caches K] [--relays N] [--seed N] [--defender H] [--json]
//! dirsim frontier  [--defense-budget-grid USD,..] [--attack-budget USD]
//!                  [--target FRAC] [--hours H] [--beam K] [--clients N]
//!                  [--caches K] [--relays N] [--seed N] [--attribution] [--json]
//! dirsim placement [--clients N] [--hours H] [--caches K] [--relays N]
//!                  [--seed N] [--greedy N] [--brownout REGION] [--json]
//! dirsim cost      [--targets K] [--flood MBPS] [--minutes M]
//! dirsim monitor   [--relays N] [--seed N]
//! ```
//!
//! Every subcommand accepts `--json` (machine-readable output on
//! stdout) and the global telemetry flags: `--trace FILE` writes the
//! structured event trace as JSONL (each line carrying the event's span
//! id and causal parent), `--trace-chrome FILE` writes the same records
//! as Chrome trace-event JSON (load in `chrome://tracing` or Perfetto —
//! causal chains render as flow arrows), `--metrics FILE` writes the
//! subcommand's metrics tree as JSON, `--profile` prints a per-phase
//! wall-clock profile to stderr at exit. Telemetry is observational —
//! enabling any of it leaves the simulation output bit-identical.
//!
//! Every subcommand also accepts `--threads N` (pins the sweep worker
//! count, overriding `PARTIALTOR_SWEEP_THREADS`) and `--help`/`-h`.
//! Unknown flags and malformed values are rejected with an error and
//! the subcommand's usage — never silently defaulted.

use partialtor::adversary::{AttackPlan, AttackWindow, Target};
use partialtor::attack::AttackCostModel;
use partialtor::calibration::ATTACK_FLOOD_MBPS;
use partialtor::experiments::{adversary, attribute, clients, frontier, placement};
use partialtor::json::Json;
use partialtor::monitor;
use partialtor::protocols::ProtocolKind;
use partialtor::runner::{set_sweep_threads, sweep, sweep_one, RunReport, Scenario, SweepJob};
use partialtor::trace_export::{chrome_trace, trace_line};
use partialtor_obs::trace::DEFAULT_TRACE_CAPACITY;
use partialtor_obs::{profile_report, set_profiling, Tracer};
use partialtor_simnet::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// One flag a subcommand accepts.
struct FlagSpec {
    /// Flag name, including the leading dashes.
    name: &'static str,
    /// Metavariable shown in usage; `None` marks a boolean flag.
    metavar: Option<&'static str>,
    /// One-line description for `--help`.
    help: &'static str,
}

const fn value_flag(name: &'static str, metavar: &'static str, help: &'static str) -> FlagSpec {
    FlagSpec {
        name,
        metavar: Some(metavar),
        help,
    }
}

const fn bool_flag(name: &'static str, help: &'static str) -> FlagSpec {
    FlagSpec {
        name,
        metavar: None,
        help,
    }
}

/// Flags every subcommand accepts.
const GLOBAL_FLAGS: &[FlagSpec] = &[
    value_flag(
        "--threads",
        "N",
        "sweep worker count (overrides PARTIALTOR_SWEEP_THREADS; 1 = serial)",
    ),
    value_flag(
        "--trace",
        "FILE",
        "write the structured event trace (JSONL, with span/cause ids)",
    ),
    value_flag(
        "--trace-chrome",
        "FILE",
        "write the trace as Chrome trace-event JSON (chrome://tracing, Perfetto)",
    ),
    value_flag("--metrics", "FILE", "write the subcommand's metrics (JSON)"),
    bool_flag(
        "--profile",
        "print a per-phase wall-clock profile to stderr",
    ),
];

/// Parsed arguments of one subcommand: flag name → raw value ("" for
/// boolean flags).
struct Args {
    values: BTreeMap<&'static str, String>,
}

fn usage_for(sub: &'static str, about: &str, spec: &[FlagSpec]) -> String {
    let mut out = format!("usage: dirsim {sub} [options]\n  {about}\n  options:\n");
    for flag in spec.iter().chain(GLOBAL_FLAGS) {
        let left = match flag.metavar {
            Some(metavar) => format!("{} {}", flag.name, metavar),
            None => flag.name.to_string(),
        };
        out.push_str(&format!("    {left:<18} {}\n", flag.help));
    }
    out.push_str("    -h, --help         show this help");
    out
}

/// Strictly parses `raw` against `spec`: every token must be a known
/// flag (with its value, if it takes one). `-h`/`--help` prints the
/// usage and exits.
fn parse_args(
    sub: &'static str,
    about: &str,
    spec: &'static [FlagSpec],
    raw: &[String],
) -> Result<Args, String> {
    let mut values = BTreeMap::new();
    let mut tokens = raw.iter();
    while let Some(token) = tokens.next() {
        if token == "-h" || token == "--help" {
            println!("{}", usage_for(sub, about, spec));
            std::process::exit(0);
        }
        let Some(flag) = spec
            .iter()
            .chain(GLOBAL_FLAGS)
            .find(|f| f.name == token.as_str())
        else {
            return Err(format!("unknown argument {token:?}"));
        };
        let value = match flag.metavar {
            None => String::new(),
            Some(metavar) => match tokens.next() {
                Some(v) if !v.starts_with("--") => v.clone(),
                _ => return Err(format!("{} expects a value <{metavar}>", flag.name)),
            },
        };
        values.insert(flag.name, value);
    }
    Ok(Args { values })
}

impl Args {
    fn present(&self, name: &str) -> bool {
        self.values.contains_key(name)
    }

    fn u64(&self, name: &str, default: u64) -> Result<u64, String> {
        match self.values.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("{name} expects an integer, got {raw:?}")),
        }
    }

    fn f64(&self, name: &str, default: f64) -> Result<f64, String> {
        match self.values.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("{name} expects a number, got {raw:?}")),
        }
    }

    fn protocol(&self) -> Result<ProtocolKind, String> {
        match self.values.get("--protocol").map(String::as_str) {
            None | Some("icps") | Some("ours") => Ok(ProtocolKind::Icps),
            Some("current") => Ok(ProtocolKind::Current),
            Some("synchronous") | Some("sync") => Ok(ProtocolKind::Synchronous),
            Some(other) => Err(format!(
                "--protocol expects current|synchronous|icps, got {other:?}"
            )),
        }
    }

    fn apply_threads(&self) -> Result<(), String> {
        if self.present("--threads") {
            set_sweep_threads(Some(self.u64("--threads", 0)? as usize));
        }
        Ok(())
    }
}

/// Telemetry context of one invocation: the tracer handed to
/// session-backed handlers, and the metrics tree every handler
/// publishes (the `--metrics` payload, and the `--json` payload for the
/// subcommands without a richer report serializer).
struct Telemetry {
    tracer: Tracer,
    metrics: Json,
}

impl Telemetry {
    /// Builds the context from the parsed flags: a live tracer when
    /// `--trace` names a file, profiling on when `--profile` is set.
    fn from_args(args: &Args) -> Telemetry {
        if args.present("--profile") {
            set_profiling(true);
        }
        Telemetry {
            tracer: if args.present("--trace") || args.present("--trace-chrome") {
                Tracer::enabled(DEFAULT_TRACE_CAPACITY)
            } else {
                Tracer::disabled()
            },
            metrics: Json::Null,
        }
    }

    /// Writes the requested export files and prints the profile after
    /// the handler ran. The ring is drained once; the JSONL and Chrome
    /// exports render the same records.
    fn finish(self, args: &Args) -> Result<(), String> {
        if args.present("--trace") || args.present("--trace-chrome") {
            let dropped = self.tracer.dropped();
            if dropped > 0 {
                eprintln!("dirsim: trace ring dropped {dropped} oldest events");
            }
            let records = self.tracer.drain_records();
            if let Some(path) = args.values.get("--trace") {
                let mut out = String::new();
                for record in &records {
                    out.push_str(&trace_line(record).render());
                    out.push('\n');
                }
                std::fs::write(path, out).map_err(|e| format!("writing trace {path:?}: {e}"))?;
            }
            if let Some(path) = args.values.get("--trace-chrome") {
                std::fs::write(path, format!("{}\n", chrome_trace(&records).render()))
                    .map_err(|e| format!("writing chrome trace {path:?}: {e}"))?;
            }
        }
        if let Some(path) = args.values.get("--metrics") {
            std::fs::write(path, format!("{}\n", self.metrics.render()))
                .map_err(|e| format!("writing metrics {path:?}: {e}"))?;
        }
        if args.present("--profile") {
            eprintln!("{:<26} {:>8} {:>12}", "phase", "calls", "total (s)");
            for (name, calls, secs) in profile_report() {
                eprintln!("{name:<26} {calls:>8} {secs:>12.4}");
            }
        }
        Ok(())
    }
}

/// One protocol run as JSON (`dirsim run --json`, and the `report` node
/// of `dirsim attack --json`).
fn run_report_json(report: &RunReport) -> Json {
    Json::obj([
        ("protocol", Json::str(report.protocol.to_string())),
        ("success", Json::from(report.success)),
        ("network_time_secs", Json::from(report.network_time_secs)),
        ("first_valid_secs", Json::from(report.first_valid_secs)),
        ("last_valid_secs", Json::from(report.last_valid_secs)),
        ("end_time_secs", Json::from(report.end_time_secs)),
        ("total_tx_bytes", Json::from(report.total_tx_bytes)),
        ("total_tx_msgs", Json::from(report.total_tx_msgs)),
        (
            "by_kind",
            Json::Obj(
                report
                    .by_kind
                    .iter()
                    .map(|(kind, &(bytes, msgs))| {
                        (
                            kind.clone(),
                            Json::obj([("bytes", Json::from(bytes)), ("msgs", Json::from(msgs))]),
                        )
                    })
                    .collect(),
            ),
        ),
        (
            "authorities",
            Json::arr(report.authorities.iter().map(|authority| {
                Json::obj([
                    ("index", Json::from(authority.index)),
                    ("success", Json::from(authority.success)),
                    (
                        "digest",
                        match authority.digest {
                            Some(digest) => Json::str(digest.short_hex(8)),
                            None => Json::Null,
                        },
                    ),
                ])
            })),
        ),
    ])
}

/// Health alerts as JSON rows (severity, stable kind, rendered message).
fn alerts_json(alerts: &[monitor::HealthAlert]) -> Json {
    Json::arr(alerts.iter().map(|alert| {
        Json::obj([
            ("severity", Json::str(alert.severity())),
            ("kind", Json::str(alert.kind())),
            ("message", Json::str(alert.to_string())),
        ])
    }))
}

const PROTOCOL_FLAG: FlagSpec = value_flag("--protocol", "P", "current | synchronous | icps");
const RELAYS_FLAG: FlagSpec = value_flag("--relays", "N", "relay population size");
const SEED_FLAG: FlagSpec = value_flag("--seed", "N", "simulation seed");
const JSON_FLAG: FlagSpec = bool_flag("--json", "emit machine-readable JSON instead of tables");

fn base_scenario(args: &Args) -> Result<Scenario, String> {
    Ok(Scenario {
        seed: args.u64("--seed", 1)?,
        relays: args.u64("--relays", 8_000)?,
        bandwidth_bps: args.f64("--bandwidth", 250.0)? * 1e6,
        real_docs: args.present("--real-docs"),
        ..Scenario::default()
    })
}

fn print_report(report: &RunReport) {
    println!("protocol      : {}", report.protocol);
    println!("success       : {}", report.success);
    match report.network_time_secs {
        Some(t) => println!("latency       : {t:.2} s"),
        None => println!("latency       : (failed)"),
    }
    if let (Some(first), Some(last)) = (report.first_valid_secs, report.last_valid_secs) {
        println!("valid between : {first:.2} s and {last:.2} s");
    }
    println!(
        "traffic       : {} messages, {:.2} MB",
        report.total_tx_msgs,
        report.total_tx_bytes as f64 / 1e6
    );
    println!("per authority :");
    for authority in &report.authorities {
        println!(
            "  auth{} success={} digest={}",
            authority.index,
            authority.success,
            authority
                .digest
                .map(|d| d.short_hex(8))
                .unwrap_or_else(|| "-".into())
        );
    }
}

const RUN_SPEC: &[FlagSpec] = &[
    PROTOCOL_FLAG,
    RELAYS_FLAG,
    value_flag("--bandwidth", "MBPS", "authority link rate, Mbit/s"),
    SEED_FLAG,
    bool_flag("--real-docs", "generate real tordoc votes (small N only)"),
    JSON_FLAG,
];

fn cmd_run(args: &Args, telemetry: &mut Telemetry) -> Result<(), String> {
    let report = sweep_one(args.protocol()?, base_scenario(args)?);
    telemetry.metrics = run_report_json(&report);
    if args.present("--json") {
        println!("{}", telemetry.metrics.render());
    } else {
        print_report(&report);
    }
    Ok(())
}

const ATTACK_SPEC: &[FlagSpec] = &[
    PROTOCOL_FLAG,
    RELAYS_FLAG,
    value_flag("--bandwidth", "MBPS", "authority link rate, Mbit/s"),
    SEED_FLAG,
    bool_flag("--real-docs", "generate real tordoc votes (small N only)"),
    value_flag("--targets", "K", "authorities flooded (default 5)"),
    value_flag("--duration", "SECS", "attack window length (default 300)"),
    value_flag(
        "--flood",
        "MBPS",
        "flood rate per victim (default 240, the §4.3 rate)",
    ),
    JSON_FLAG,
];

fn cmd_attack(args: &Args, telemetry: &mut Telemetry) -> Result<(), String> {
    let mut scenario = base_scenario(args)?;
    let targets = args.u64("--targets", 5)? as usize;
    let duration = SimDuration::from_secs(args.u64("--duration", 300)?);
    let flood_mbps = args.f64("--flood", ATTACK_FLOOD_MBPS)?;
    scenario.attack = AttackPlan::new(
        (0..targets.min(scenario.n))
            .map(|i| AttackWindow::new(Target::Authority(i), SimTime::ZERO, duration, flood_mbps))
            .collect(),
    );
    let cost = scenario.attack.cost();
    let report = sweep_one(args.protocol()?, scenario);
    let alerts = monitor::analyze(&report);
    telemetry.metrics = Json::obj([
        ("report", run_report_json(&report)),
        ("attack_cost_usd", Json::from(cost)),
        ("alerts", alerts_json(&alerts)),
    ]);
    if args.present("--json") {
        println!("{}", telemetry.metrics.render());
        return Ok(());
    }
    print_report(&report);
    println!("attack cost   : ${cost:.4} for this window set");
    println!("\nmonitor alerts:");
    if alerts.is_empty() {
        println!("  (none)");
    }
    for alert in alerts {
        println!("  {alert}");
    }
    Ok(())
}

const SWEEP_SPEC: &[FlagSpec] = &[PROTOCOL_FLAG, RELAYS_FLAG, SEED_FLAG, JSON_FLAG];

fn cmd_sweep(args: &Args, telemetry: &mut Telemetry) -> Result<(), String> {
    let protocol = args.protocol()?;
    let base = base_scenario(args)?;
    let bandwidths = [250.0, 50.0, 20.0, 10.0, 5.0, 1.0, 0.5];
    // The whole bandwidth sweep is one parallel batch.
    let jobs: Vec<SweepJob> = bandwidths
        .iter()
        .map(|&mbps| {
            SweepJob::new(
                protocol,
                Scenario {
                    bandwidth_bps: mbps * 1e6,
                    ..base.clone()
                },
            )
        })
        .collect();
    let reports = sweep(&jobs);
    telemetry.metrics = Json::obj([
        ("protocol", Json::str(protocol.to_string())),
        (
            "rows",
            Json::arr(bandwidths.iter().zip(&reports).map(|(&mbps, report)| {
                Json::obj([
                    ("bandwidth_mbps", Json::from(mbps)),
                    ("success", Json::from(report.success)),
                    (
                        "latency_secs",
                        Json::from(report.success.then_some(report.network_time_secs).flatten()),
                    ),
                ])
            })),
        ),
    ]);
    if args.present("--json") {
        println!("{}", telemetry.metrics.render());
        return Ok(());
    }
    println!("{:>10} {:>12}", "Mbit/s", "latency (s)");
    for (mbps, report) in bandwidths.into_iter().zip(reports) {
        let cell = report
            .success
            .then_some(report.network_time_secs)
            .flatten()
            .map(|t| format!("{t:.1}"))
            .unwrap_or_else(|| "FAIL".into());
        println!("{mbps:>10} {cell:>12}");
    }
    Ok(())
}

const COST_SPEC: &[FlagSpec] = &[
    value_flag("--targets", "K", "authorities flooded (default 5)"),
    value_flag("--flood", "MBPS", "flood rate per victim (default 240)"),
    value_flag("--minutes", "M", "minutes per hourly run (default 5)"),
    JSON_FLAG,
];

fn cmd_cost(args: &Args, telemetry: &mut Telemetry) -> Result<(), String> {
    let model = AttackCostModel {
        targets: args.u64("--targets", 5)? as usize,
        flood_mbps: args.f64("--flood", ATTACK_FLOOD_MBPS)?,
        minutes_per_run: args.f64("--minutes", 5.0)?,
        runs_per_hour: 1.0,
        pricing: Default::default(),
    };
    telemetry.metrics = Json::obj([
        ("targets", Json::from(model.targets)),
        ("flood_mbps", Json::from(model.flood_mbps)),
        ("minutes_per_run", Json::from(model.minutes_per_run)),
        ("cost_per_run_usd", Json::from(model.cost_per_run())),
        ("cost_per_month_usd", Json::from(model.cost_per_month())),
    ]);
    if args.present("--json") {
        println!("{}", telemetry.metrics.render());
        return Ok(());
    }
    println!("cost per breached run : ${:.4}", model.cost_per_run());
    println!("cost per month        : ${:.2}", model.cost_per_month());
    Ok(())
}

const MONITOR_SPEC: &[FlagSpec] = &[RELAYS_FLAG, SEED_FLAG, JSON_FLAG];

fn cmd_monitor(args: &Args, telemetry: &mut Telemetry) -> Result<(), String> {
    let scenario = base_scenario(args)?;
    let protocols = [
        ProtocolKind::Current,
        ProtocolKind::Synchronous,
        ProtocolKind::Icps,
    ];
    let jobs: Vec<SweepJob> = protocols
        .iter()
        .map(|&protocol| SweepJob::new(protocol, scenario.clone()))
        .collect();
    let rows: Vec<(ProtocolKind, RunReport, Vec<monitor::HealthAlert>)> = protocols
        .into_iter()
        .zip(sweep(&jobs))
        .map(|(protocol, report)| {
            let alerts = monitor::analyze(&report);
            (protocol, report, alerts)
        })
        .collect();
    telemetry.metrics = Json::obj([(
        "protocols",
        Json::arr(rows.iter().map(|(protocol, report, alerts)| {
            Json::obj([
                ("protocol", Json::str(protocol.to_string())),
                ("success", Json::from(report.success)),
                ("alerts", alerts_json(alerts)),
            ])
        })),
    )]);
    if args.present("--json") {
        println!("{}", telemetry.metrics.render());
        return Ok(());
    }
    for (protocol, report, alerts) in rows {
        println!(
            "{:<12} success={} alerts={}",
            protocol.to_string(),
            report.success,
            alerts.len()
        );
        for alert in alerts {
            println!("  {alert}");
        }
    }
    Ok(())
}

const CLIENTS_SPEC: &[FlagSpec] = &[
    value_flag("--clients", "N", "client fleet size (default 3000000)"),
    value_flag("--hours", "H", "attacked hours simulated (default 24)"),
    value_flag(
        "--days",
        "N",
        "attacked days simulated (sets --hours to 24 N)",
    ),
    value_flag("--caches", "K", "directory caches (default 200)"),
    RELAYS_FLAG,
    SEED_FLAG,
    bool_flag(
        "--feedback",
        "close the fetch-feedback loop (hour h's client load hits hour h+1's links)",
    ),
    value_flag(
        "--churn",
        "C",
        "hourly relay churn: a rate (default 0.02) or 'weekly' (Fig. 6 series)",
    ),
    bool_flag(
        "--real-docs",
        "measure document sizes from real tordoc consensuses (small --relays only)",
    ),
    value_flag(
        "--fetch-mix",
        "FILE",
        "export the Current protocol's per-hour fetch mixes for dirload replay",
    ),
    bool_flag(
        "--attribution",
        "decompose each hour's downtime into additive blame causes (observational)",
    ),
    JSON_FLAG,
];

/// Parses `--churn`: a bare rate, or `weekly` for the Fig. 6 schedule.
fn churn_schedule(args: &Args) -> Result<partialtor_dirdist::ChurnSchedule, String> {
    use partialtor_dirdist::ChurnSchedule;
    match args.values.get("--churn").map(String::as_str) {
        None => Ok(ChurnSchedule::default()),
        Some("weekly") => Ok(ChurnSchedule::weekly()),
        Some(raw) => match raw.parse::<f64>() {
            Ok(rate) if (0.0..=1.0).contains(&rate) => Ok(ChurnSchedule::Constant(rate)),
            _ => Err(format!(
                "--churn expects 'weekly' or a rate in [0, 1], got {raw:?}"
            )),
        },
    }
}

fn cmd_clients(args: &Args, telemetry: &mut Telemetry) -> Result<(), String> {
    let hours = match args.u64("--days", 0)? {
        0 => args.u64("--hours", 24)?,
        days => {
            if args.present("--hours") {
                return Err("--days and --hours are mutually exclusive".into());
            }
            24 * days
        }
    };
    let relays = args.u64("--relays", 8_000)?;
    if args.present("--real-docs") && relays > clients::REAL_DOCS_MAX_RELAYS {
        return Err(format!(
            "--real-docs builds real documents; use --relays {} or fewer",
            clients::REAL_DOCS_MAX_RELAYS
        ));
    }
    let params = clients::ClientsParams {
        hours,
        clients: args.u64("--clients", 3_000_000)?,
        caches: args.u64("--caches", 200)? as usize,
        relays,
        seed: args.u64("--seed", 1)?,
        feedback: args.present("--feedback"),
        churn: churn_schedule(args)?,
        real_docs: args.present("--real-docs"),
        attribution: args.present("--attribution"),
    };
    let results = clients::run_experiment_traced(&params, &telemetry.tracer);
    telemetry.metrics = clients::metrics_json(&results);
    if let Some(path) = args.values.get("--fetch-mix") {
        std::fs::write(path, clients::fetch_mix_export(&results))
            .map_err(|e| format!("--fetch-mix: write {path}: {e}"))?;
        eprintln!("fetch mixes written to {path}");
    }
    if args.present("--json") {
        println!("{}", clients::to_json(&results).render());
    } else {
        print!("{}", clients::render(&results));
    }
    Ok(())
}

const ATTRIBUTE_SPEC: &[FlagSpec] = &[
    value_flag("--clients", "N", "client fleet size (default 3000000)"),
    value_flag("--hours", "H", "attacked hours simulated (default 24)"),
    value_flag("--caches", "K", "directory caches (default 200)"),
    RELAYS_FLAG,
    SEED_FLAG,
    bool_flag(
        "--feedback",
        "close the fetch-feedback loop (hour h's client load hits hour h+1's links)",
    ),
    JSON_FLAG,
];

fn cmd_attribute(args: &Args, telemetry: &mut Telemetry) -> Result<(), String> {
    let defaults = attribute::AttributeParams::default();
    let params = attribute::AttributeParams {
        hours: args.u64("--hours", defaults.hours)?,
        clients: args.u64("--clients", defaults.clients)?,
        caches: args.u64("--caches", defaults.caches as u64)? as usize,
        relays: args.u64("--relays", defaults.relays)?,
        seed: args.u64("--seed", defaults.seed)?,
        feedback: args.present("--feedback"),
    };
    let result = attribute::run_experiment_traced(&params, &telemetry.tracer);
    telemetry.metrics = attribute::to_json(&result);
    if args.present("--json") {
        println!("{}", telemetry.metrics.render());
    } else {
        print!("{}", attribute::render(&result));
    }
    Ok(())
}

const ADVERSARY_SPEC: &[FlagSpec] = &[
    value_flag("--budget", "USD", "attack budget, $/month (default 55)"),
    value_flag("--hours", "H", "scored horizon, hours (default 24)"),
    value_flag("--beam", "K", "beam width (default 4)"),
    value_flag("--clients", "N", "scoring fleet size (default 200000)"),
    value_flag("--caches", "K", "directory caches (default 50)"),
    RELAYS_FLAG,
    SEED_FLAG,
    value_flag(
        "--defender",
        "H",
        "blocklist victims flooded H consecutive hours (0 = no defender)",
    ),
    JSON_FLAG,
];

fn cmd_adversary(args: &Args, telemetry: &mut Telemetry) -> Result<(), String> {
    let defaults = adversary::AdversaryParams::default();
    let params = adversary::AdversaryParams {
        budget_usd_month: args.f64("--budget", defaults.budget_usd_month)?,
        hours: args.u64("--hours", defaults.hours)?,
        beam: args.u64("--beam", defaults.beam as u64)? as usize,
        clients: args.u64("--clients", defaults.clients)?,
        caches: args.u64("--caches", defaults.caches as u64)? as usize,
        relays: args.u64("--relays", defaults.relays)?,
        seed: args.u64("--seed", defaults.seed)?,
        defender_trigger_hours: match args.u64("--defender", 0)? {
            0 => None,
            trigger => Some(trigger),
        },
    };
    let result = adversary::run_experiment_traced(&params, &telemetry.tracer);
    telemetry.metrics = adversary::to_json(&result);
    if args.present("--json") {
        println!("{}", telemetry.metrics.render());
    } else {
        print!("{}", adversary::render(&result));
    }
    Ok(())
}

const FRONTIER_SPEC: &[FlagSpec] = &[
    value_flag(
        "--defense-budget-grid",
        "USD,..",
        "defense budgets to sweep, $/month (default 0,15,30,60,120)",
    ),
    value_flag(
        "--attack-budget",
        "USD",
        "attacker budget, $/month (default 120)",
    ),
    value_flag(
        "--target",
        "FRAC",
        "client-weighted downtime that counts as denial (default 0.8)",
    ),
    value_flag("--hours", "H", "scored horizon, hours (default 24)"),
    value_flag("--beam", "K", "beam width, both sides (default 2)"),
    value_flag("--clients", "N", "scoring fleet size (default 200000)"),
    value_flag("--caches", "K", "directory caches (default 50)"),
    RELAYS_FLAG,
    SEED_FLAG,
    bool_flag(
        "--attribution",
        "decompose each row's downtime into additive blame causes (observational)",
    ),
    JSON_FLAG,
];

fn cmd_frontier(args: &Args, telemetry: &mut Telemetry) -> Result<(), String> {
    let defaults = frontier::FrontierParams::default();
    let defense_budgets = match args.values.get("--defense-budget-grid") {
        None => defaults.defense_budgets.clone(),
        Some(raw) => raw
            .split(',')
            .map(|s| {
                s.trim().parse::<f64>().map_err(|_| {
                    format!("--defense-budget-grid expects comma-separated dollars, got {raw:?}")
                })
            })
            .collect::<Result<Vec<f64>, String>>()?,
    };
    let params = frontier::FrontierParams {
        defense_budgets,
        attack_budget_usd_month: args.f64("--attack-budget", defaults.attack_budget_usd_month)?,
        target_downtime: args.f64("--target", defaults.target_downtime)?,
        hours: args.u64("--hours", defaults.hours)?,
        beam: args.u64("--beam", defaults.beam as u64)? as usize,
        clients: args.u64("--clients", defaults.clients)?,
        caches: args.u64("--caches", defaults.caches as u64)? as usize,
        relays: args.u64("--relays", defaults.relays)?,
        seed: args.u64("--seed", defaults.seed)?,
        attribution: args.present("--attribution"),
    };
    let result = frontier::run_experiment_traced(&params, &telemetry.tracer);
    telemetry.metrics = frontier::to_json(&result);
    if args.present("--json") {
        println!("{}", telemetry.metrics.render());
    } else {
        print!("{}", frontier::render(&result));
    }
    Ok(())
}

const PLACEMENT_SPEC: &[FlagSpec] = &[
    value_flag("--clients", "N", "client fleet size (default 200000)"),
    value_flag("--hours", "H", "attacked hours simulated (default 24)"),
    value_flag(
        "--caches",
        "K",
        "directory caches per strategy (default 40)",
    ),
    RELAYS_FLAG,
    SEED_FLAG,
    value_flag(
        "--greedy",
        "N",
        "caches the greedy search places (default = --caches; 0 = skip)",
    ),
    value_flag(
        "--brownout",
        "REGION",
        "brown out one region's caches instead of flooding the authorities \
         (us-east | us-west | europe | apac)",
    ),
    JSON_FLAG,
];

fn cmd_placement(args: &Args, telemetry: &mut Telemetry) -> Result<(), String> {
    let defaults = placement::PlacementParams::default();
    let caches = args.u64("--caches", defaults.caches as u64)? as usize;
    let params = placement::PlacementParams {
        hours: args.u64("--hours", defaults.hours)?,
        clients: args.u64("--clients", defaults.clients)?,
        caches,
        relays: args.u64("--relays", defaults.relays)?,
        seed: args.u64("--seed", defaults.seed)?,
        greedy: args.u64("--greedy", caches as u64)? as usize,
        brownout: match args.values.get("--brownout") {
            None => None,
            Some(raw) => Some(partialtor_simnet::Region::from_label(raw).ok_or_else(|| {
                format!("--brownout expects us-east|us-west|europe|apac, got {raw:?}")
            })?),
        },
    };
    let result = placement::run_experiment(&params);
    telemetry.metrics = placement::to_json(&result);
    if args.present("--json") {
        println!("{}", telemetry.metrics.render());
    } else {
        print!("{}", placement::render(&result));
    }
    Ok(())
}

const USAGE: &str =
    "usage: dirsim <run|attack|sweep|clients|attribute|adversary|frontier|placement|cost|monitor> [options]
  run       one protocol run
  attack    one run under a bandwidth-DDoS window set
  sweep     latency across a bandwidth grid
  clients   client-visible availability through the distribution layer
  attribute exact blame decomposition of the five-of-nine downtime
  adversary budget-constrained strategy search over authorities + caches
  frontier  attacker-defender co-evolution: the cost-of-denial frontier
  placement geographic cache-placement sweep + greedy placement search
  cost      the §4.3 DDoS-for-hire price arithmetic
  monitor   run all three protocols through the bandwidth monitor
run `dirsim <subcommand> --help` for the subcommand's options;
every subcommand also accepts --threads N (1 = serial sweeps),
--trace FILE (JSONL event trace with span/cause ids),
--trace-chrome FILE (Chrome trace-event JSON for chrome://tracing),
--metrics FILE (metrics JSON)
and --profile (per-phase wall-clock profile on stderr)";

/// Subcommand table: name, one-line description, flag spec, handler.
type Handler = fn(&Args, &mut Telemetry) -> Result<(), String>;
const SUBCOMMANDS: &[(&str, &str, &[FlagSpec], Handler)] = &[
    ("run", "one protocol run", RUN_SPEC, cmd_run),
    (
        "attack",
        "one run under a bandwidth-DDoS window set",
        ATTACK_SPEC,
        cmd_attack,
    ),
    (
        "sweep",
        "latency across a bandwidth grid",
        SWEEP_SPEC,
        cmd_sweep,
    ),
    (
        "clients",
        "client-visible availability through the distribution layer",
        CLIENTS_SPEC,
        cmd_clients,
    ),
    (
        "attribute",
        "exact blame decomposition of the five-of-nine downtime",
        ATTRIBUTE_SPEC,
        cmd_attribute,
    ),
    (
        "adversary",
        "budget-constrained strategy search over authorities + caches",
        ADVERSARY_SPEC,
        cmd_adversary,
    ),
    (
        "frontier",
        "attacker-defender co-evolution: the cost-of-denial frontier",
        FRONTIER_SPEC,
        cmd_frontier,
    ),
    (
        "placement",
        "geographic cache-placement sweep + greedy placement search",
        PLACEMENT_SPEC,
        cmd_placement,
    ),
    (
        "cost",
        "the §4.3 DDoS-for-hire price arithmetic",
        COST_SPEC,
        cmd_cost,
    ),
    (
        "monitor",
        "run all three protocols through the bandwidth monitor",
        MONITOR_SPEC,
        cmd_monitor,
    ),
];

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(first) = raw.first() else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };
    if first == "-h" || first == "--help" {
        println!("{USAGE}");
        return;
    }
    let Some((sub, about, spec, handler)) =
        SUBCOMMANDS.iter().find(|(name, ..)| name == first).copied()
    else {
        eprintln!("unknown subcommand {first:?}\n{USAGE}");
        std::process::exit(2);
    };
    let outcome = parse_args(sub, about, spec, &raw[1..])
        .and_then(|args| args.apply_threads().map(|()| args))
        .and_then(|args| {
            let mut telemetry = Telemetry::from_args(&args);
            handler(&args, &mut telemetry)?;
            telemetry.finish(&args)
        });
    if let Err(error) = outcome {
        eprintln!("dirsim {sub}: {error}");
        eprintln!("{}", usage_for(sub, about, spec));
        std::process::exit(2);
    }
}
