//! `dirsim` — command-line front end for the directory-protocol simulator.
//!
//! ```text
//! dirsim run       [--protocol current|synchronous|icps] [--relays N]
//!                  [--bandwidth MBPS] [--seed N] [--real-docs]
//! dirsim attack    [--protocol ...] [--targets K] [--duration SECS]
//!                  [--flood MBPS] [--relays N] [--seed N]
//! dirsim sweep     [--protocol ...] [--relays N] [--seed N]
//! dirsim clients   [--clients N] [--hours H | --days N] [--caches K] [--relays N]
//!                  [--seed N] [--feedback] [--churn C|weekly] [--real-docs] [--json]
//! dirsim adversary [--budget USD] [--hours H] [--beam K] [--clients N]
//!                  [--caches K] [--relays N] [--seed N] [--defender H] [--json]
//! dirsim placement [--clients N] [--hours H] [--caches K] [--relays N]
//!                  [--seed N] [--greedy N] [--brownout REGION] [--json]
//! dirsim cost      [--targets K] [--flood MBPS] [--minutes M]
//! dirsim monitor   [--relays N] [--seed N]
//! ```
//!
//! Every subcommand accepts `--threads N` (pins the sweep worker count,
//! overriding `PARTIALTOR_SWEEP_THREADS`) and `--help`/`-h`. Unknown
//! flags and malformed values are rejected with an error and the
//! subcommand's usage — never silently defaulted.

use partialtor::adversary::{AttackPlan, AttackWindow, Target};
use partialtor::attack::AttackCostModel;
use partialtor::calibration::ATTACK_FLOOD_MBPS;
use partialtor::experiments::{adversary, clients, placement};
use partialtor::monitor;
use partialtor::protocols::ProtocolKind;
use partialtor::runner::{set_sweep_threads, sweep, sweep_one, RunReport, Scenario, SweepJob};
use partialtor_simnet::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// One flag a subcommand accepts.
struct FlagSpec {
    /// Flag name, including the leading dashes.
    name: &'static str,
    /// Metavariable shown in usage; `None` marks a boolean flag.
    metavar: Option<&'static str>,
    /// One-line description for `--help`.
    help: &'static str,
}

const fn value_flag(name: &'static str, metavar: &'static str, help: &'static str) -> FlagSpec {
    FlagSpec {
        name,
        metavar: Some(metavar),
        help,
    }
}

const fn bool_flag(name: &'static str, help: &'static str) -> FlagSpec {
    FlagSpec {
        name,
        metavar: None,
        help,
    }
}

/// Flags every subcommand accepts.
const GLOBAL_FLAGS: &[FlagSpec] = &[value_flag(
    "--threads",
    "N",
    "sweep worker count (overrides PARTIALTOR_SWEEP_THREADS; 1 = serial)",
)];

/// Parsed arguments of one subcommand: flag name → raw value ("" for
/// boolean flags).
struct Args {
    values: BTreeMap<&'static str, String>,
}

fn usage_for(sub: &'static str, about: &str, spec: &[FlagSpec]) -> String {
    let mut out = format!("usage: dirsim {sub} [options]\n  {about}\n  options:\n");
    for flag in spec.iter().chain(GLOBAL_FLAGS) {
        let left = match flag.metavar {
            Some(metavar) => format!("{} {}", flag.name, metavar),
            None => flag.name.to_string(),
        };
        out.push_str(&format!("    {left:<18} {}\n", flag.help));
    }
    out.push_str("    -h, --help         show this help");
    out
}

/// Strictly parses `raw` against `spec`: every token must be a known
/// flag (with its value, if it takes one). `-h`/`--help` prints the
/// usage and exits.
fn parse_args(
    sub: &'static str,
    about: &str,
    spec: &'static [FlagSpec],
    raw: &[String],
) -> Result<Args, String> {
    let mut values = BTreeMap::new();
    let mut tokens = raw.iter();
    while let Some(token) = tokens.next() {
        if token == "-h" || token == "--help" {
            println!("{}", usage_for(sub, about, spec));
            std::process::exit(0);
        }
        let Some(flag) = spec
            .iter()
            .chain(GLOBAL_FLAGS)
            .find(|f| f.name == token.as_str())
        else {
            return Err(format!("unknown argument {token:?}"));
        };
        let value = match flag.metavar {
            None => String::new(),
            Some(metavar) => match tokens.next() {
                Some(v) if !v.starts_with("--") => v.clone(),
                _ => return Err(format!("{} expects a value <{metavar}>", flag.name)),
            },
        };
        values.insert(flag.name, value);
    }
    Ok(Args { values })
}

impl Args {
    fn present(&self, name: &str) -> bool {
        self.values.contains_key(name)
    }

    fn u64(&self, name: &str, default: u64) -> Result<u64, String> {
        match self.values.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("{name} expects an integer, got {raw:?}")),
        }
    }

    fn f64(&self, name: &str, default: f64) -> Result<f64, String> {
        match self.values.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("{name} expects a number, got {raw:?}")),
        }
    }

    fn protocol(&self) -> Result<ProtocolKind, String> {
        match self.values.get("--protocol").map(String::as_str) {
            None | Some("icps") | Some("ours") => Ok(ProtocolKind::Icps),
            Some("current") => Ok(ProtocolKind::Current),
            Some("synchronous") | Some("sync") => Ok(ProtocolKind::Synchronous),
            Some(other) => Err(format!(
                "--protocol expects current|synchronous|icps, got {other:?}"
            )),
        }
    }

    fn apply_threads(&self) -> Result<(), String> {
        if self.present("--threads") {
            set_sweep_threads(Some(self.u64("--threads", 0)? as usize));
        }
        Ok(())
    }
}

const PROTOCOL_FLAG: FlagSpec = value_flag("--protocol", "P", "current | synchronous | icps");
const RELAYS_FLAG: FlagSpec = value_flag("--relays", "N", "relay population size");
const SEED_FLAG: FlagSpec = value_flag("--seed", "N", "simulation seed");

fn base_scenario(args: &Args) -> Result<Scenario, String> {
    Ok(Scenario {
        seed: args.u64("--seed", 1)?,
        relays: args.u64("--relays", 8_000)?,
        bandwidth_bps: args.f64("--bandwidth", 250.0)? * 1e6,
        real_docs: args.present("--real-docs"),
        ..Scenario::default()
    })
}

fn print_report(report: &RunReport) {
    println!("protocol      : {}", report.protocol);
    println!("success       : {}", report.success);
    match report.network_time_secs {
        Some(t) => println!("latency       : {t:.2} s"),
        None => println!("latency       : (failed)"),
    }
    if let (Some(first), Some(last)) = (report.first_valid_secs, report.last_valid_secs) {
        println!("valid between : {first:.2} s and {last:.2} s");
    }
    println!(
        "traffic       : {} messages, {:.2} MB",
        report.total_tx_msgs,
        report.total_tx_bytes as f64 / 1e6
    );
    println!("per authority :");
    for authority in &report.authorities {
        println!(
            "  auth{} success={} digest={}",
            authority.index,
            authority.success,
            authority
                .digest
                .map(|d| d.short_hex(8))
                .unwrap_or_else(|| "-".into())
        );
    }
}

const RUN_SPEC: &[FlagSpec] = &[
    PROTOCOL_FLAG,
    RELAYS_FLAG,
    value_flag("--bandwidth", "MBPS", "authority link rate, Mbit/s"),
    SEED_FLAG,
    bool_flag("--real-docs", "generate real tordoc votes (small N only)"),
];

fn cmd_run(args: &Args) -> Result<(), String> {
    let report = sweep_one(args.protocol()?, base_scenario(args)?);
    print_report(&report);
    Ok(())
}

const ATTACK_SPEC: &[FlagSpec] = &[
    PROTOCOL_FLAG,
    RELAYS_FLAG,
    value_flag("--bandwidth", "MBPS", "authority link rate, Mbit/s"),
    SEED_FLAG,
    bool_flag("--real-docs", "generate real tordoc votes (small N only)"),
    value_flag("--targets", "K", "authorities flooded (default 5)"),
    value_flag("--duration", "SECS", "attack window length (default 300)"),
    value_flag(
        "--flood",
        "MBPS",
        "flood rate per victim (default 240, the §4.3 rate)",
    ),
];

fn cmd_attack(args: &Args) -> Result<(), String> {
    let mut scenario = base_scenario(args)?;
    let targets = args.u64("--targets", 5)? as usize;
    let duration = SimDuration::from_secs(args.u64("--duration", 300)?);
    let flood_mbps = args.f64("--flood", ATTACK_FLOOD_MBPS)?;
    scenario.attack = AttackPlan::new(
        (0..targets.min(scenario.n))
            .map(|i| AttackWindow::new(Target::Authority(i), SimTime::ZERO, duration, flood_mbps))
            .collect(),
    );
    let cost = scenario.attack.cost();
    let report = sweep_one(args.protocol()?, scenario);
    print_report(&report);
    println!("attack cost   : ${cost:.4} for this window set");
    println!("\nmonitor alerts:");
    let alerts = monitor::analyze(&report);
    if alerts.is_empty() {
        println!("  (none)");
    }
    for alert in alerts {
        println!("  {alert}");
    }
    Ok(())
}

const SWEEP_SPEC: &[FlagSpec] = &[PROTOCOL_FLAG, RELAYS_FLAG, SEED_FLAG];

fn cmd_sweep(args: &Args) -> Result<(), String> {
    let protocol = args.protocol()?;
    let base = base_scenario(args)?;
    let bandwidths = [250.0, 50.0, 20.0, 10.0, 5.0, 1.0, 0.5];
    // The whole bandwidth sweep is one parallel batch.
    let jobs: Vec<SweepJob> = bandwidths
        .iter()
        .map(|&mbps| {
            SweepJob::new(
                protocol,
                Scenario {
                    bandwidth_bps: mbps * 1e6,
                    ..base.clone()
                },
            )
        })
        .collect();
    println!("{:>10} {:>12}", "Mbit/s", "latency (s)");
    for (mbps, report) in bandwidths.into_iter().zip(sweep(&jobs)) {
        let cell = report
            .success
            .then_some(report.network_time_secs)
            .flatten()
            .map(|t| format!("{t:.1}"))
            .unwrap_or_else(|| "FAIL".into());
        println!("{mbps:>10} {cell:>12}");
    }
    Ok(())
}

const COST_SPEC: &[FlagSpec] = &[
    value_flag("--targets", "K", "authorities flooded (default 5)"),
    value_flag("--flood", "MBPS", "flood rate per victim (default 240)"),
    value_flag("--minutes", "M", "minutes per hourly run (default 5)"),
];

fn cmd_cost(args: &Args) -> Result<(), String> {
    let model = AttackCostModel {
        targets: args.u64("--targets", 5)? as usize,
        flood_mbps: args.f64("--flood", ATTACK_FLOOD_MBPS)?,
        minutes_per_run: args.f64("--minutes", 5.0)?,
        runs_per_hour: 1.0,
        pricing: Default::default(),
    };
    println!("cost per breached run : ${:.4}", model.cost_per_run());
    println!("cost per month        : ${:.2}", model.cost_per_month());
    Ok(())
}

const MONITOR_SPEC: &[FlagSpec] = &[RELAYS_FLAG, SEED_FLAG];

fn cmd_monitor(args: &Args) -> Result<(), String> {
    let scenario = base_scenario(args)?;
    let protocols = [
        ProtocolKind::Current,
        ProtocolKind::Synchronous,
        ProtocolKind::Icps,
    ];
    let jobs: Vec<SweepJob> = protocols
        .iter()
        .map(|&protocol| SweepJob::new(protocol, scenario.clone()))
        .collect();
    for (protocol, report) in protocols.into_iter().zip(sweep(&jobs)) {
        let alerts = monitor::analyze(&report);
        println!(
            "{:<12} success={} alerts={}",
            protocol.to_string(),
            report.success,
            alerts.len()
        );
        for alert in alerts {
            println!("  {alert}");
        }
    }
    Ok(())
}

const CLIENTS_SPEC: &[FlagSpec] = &[
    value_flag("--clients", "N", "client fleet size (default 3000000)"),
    value_flag("--hours", "H", "attacked hours simulated (default 24)"),
    value_flag(
        "--days",
        "N",
        "attacked days simulated (sets --hours to 24 N)",
    ),
    value_flag("--caches", "K", "directory caches (default 200)"),
    RELAYS_FLAG,
    SEED_FLAG,
    bool_flag(
        "--feedback",
        "close the fetch-feedback loop (hour h's client load hits hour h+1's links)",
    ),
    value_flag(
        "--churn",
        "C",
        "hourly relay churn: a rate (default 0.02) or 'weekly' (Fig. 6 series)",
    ),
    bool_flag(
        "--real-docs",
        "measure document sizes from real tordoc consensuses (small --relays only)",
    ),
    bool_flag("--json", "emit machine-readable JSON instead of tables"),
];

/// Parses `--churn`: a bare rate, or `weekly` for the Fig. 6 schedule.
fn churn_schedule(args: &Args) -> Result<partialtor_dirdist::ChurnSchedule, String> {
    use partialtor_dirdist::ChurnSchedule;
    match args.values.get("--churn").map(String::as_str) {
        None => Ok(ChurnSchedule::default()),
        Some("weekly") => Ok(ChurnSchedule::weekly()),
        Some(raw) => match raw.parse::<f64>() {
            Ok(rate) if (0.0..=1.0).contains(&rate) => Ok(ChurnSchedule::Constant(rate)),
            _ => Err(format!(
                "--churn expects 'weekly' or a rate in [0, 1], got {raw:?}"
            )),
        },
    }
}

fn cmd_clients(args: &Args) -> Result<(), String> {
    let hours = match args.u64("--days", 0)? {
        0 => args.u64("--hours", 24)?,
        days => {
            if args.present("--hours") {
                return Err("--days and --hours are mutually exclusive".into());
            }
            24 * days
        }
    };
    let relays = args.u64("--relays", 8_000)?;
    if args.present("--real-docs") && relays > clients::REAL_DOCS_MAX_RELAYS {
        return Err(format!(
            "--real-docs builds real documents; use --relays {} or fewer",
            clients::REAL_DOCS_MAX_RELAYS
        ));
    }
    let params = clients::ClientsParams {
        hours,
        clients: args.u64("--clients", 3_000_000)?,
        caches: args.u64("--caches", 200)? as usize,
        relays,
        seed: args.u64("--seed", 1)?,
        feedback: args.present("--feedback"),
        churn: churn_schedule(args)?,
        real_docs: args.present("--real-docs"),
    };
    let results = clients::run_experiment(&params);
    if args.present("--json") {
        println!("{}", clients::to_json(&results).render());
    } else {
        print!("{}", clients::render(&results));
    }
    Ok(())
}

const ADVERSARY_SPEC: &[FlagSpec] = &[
    value_flag("--budget", "USD", "attack budget, $/month (default 55)"),
    value_flag("--hours", "H", "scored horizon, hours (default 24)"),
    value_flag("--beam", "K", "beam width (default 4)"),
    value_flag("--clients", "N", "scoring fleet size (default 200000)"),
    value_flag("--caches", "K", "directory caches (default 50)"),
    RELAYS_FLAG,
    SEED_FLAG,
    value_flag(
        "--defender",
        "H",
        "blocklist victims flooded H consecutive hours (0 = no defender)",
    ),
    bool_flag("--json", "emit machine-readable JSON instead of tables"),
];

fn cmd_adversary(args: &Args) -> Result<(), String> {
    let defaults = adversary::AdversaryParams::default();
    let params = adversary::AdversaryParams {
        budget_usd_month: args.f64("--budget", defaults.budget_usd_month)?,
        hours: args.u64("--hours", defaults.hours)?,
        beam: args.u64("--beam", defaults.beam as u64)? as usize,
        clients: args.u64("--clients", defaults.clients)?,
        caches: args.u64("--caches", defaults.caches as u64)? as usize,
        relays: args.u64("--relays", defaults.relays)?,
        seed: args.u64("--seed", defaults.seed)?,
        defender_trigger_hours: match args.u64("--defender", 0)? {
            0 => None,
            trigger => Some(trigger),
        },
    };
    let result = adversary::run_experiment(&params);
    if args.present("--json") {
        println!("{}", adversary::to_json(&result).render());
    } else {
        print!("{}", adversary::render(&result));
    }
    Ok(())
}

const PLACEMENT_SPEC: &[FlagSpec] = &[
    value_flag("--clients", "N", "client fleet size (default 200000)"),
    value_flag("--hours", "H", "attacked hours simulated (default 24)"),
    value_flag(
        "--caches",
        "K",
        "directory caches per strategy (default 40)",
    ),
    RELAYS_FLAG,
    SEED_FLAG,
    value_flag(
        "--greedy",
        "N",
        "caches the greedy search places (default = --caches; 0 = skip)",
    ),
    value_flag(
        "--brownout",
        "REGION",
        "brown out one region's caches instead of flooding the authorities \
         (us-east | us-west | europe | apac)",
    ),
    bool_flag("--json", "emit machine-readable JSON instead of tables"),
];

fn cmd_placement(args: &Args) -> Result<(), String> {
    let defaults = placement::PlacementParams::default();
    let caches = args.u64("--caches", defaults.caches as u64)? as usize;
    let params = placement::PlacementParams {
        hours: args.u64("--hours", defaults.hours)?,
        clients: args.u64("--clients", defaults.clients)?,
        caches,
        relays: args.u64("--relays", defaults.relays)?,
        seed: args.u64("--seed", defaults.seed)?,
        greedy: args.u64("--greedy", caches as u64)? as usize,
        brownout: match args.values.get("--brownout") {
            None => None,
            Some(raw) => Some(partialtor_simnet::Region::from_label(raw).ok_or_else(|| {
                format!("--brownout expects us-east|us-west|europe|apac, got {raw:?}")
            })?),
        },
    };
    let result = placement::run_experiment(&params);
    if args.present("--json") {
        println!("{}", placement::to_json(&result).render());
    } else {
        print!("{}", placement::render(&result));
    }
    Ok(())
}

const USAGE: &str =
    "usage: dirsim <run|attack|sweep|clients|adversary|placement|cost|monitor> [options]
  run       one protocol run
  attack    one run under a bandwidth-DDoS window set
  sweep     latency across a bandwidth grid
  clients   client-visible availability through the distribution layer
  adversary budget-constrained strategy search over authorities + caches
  placement geographic cache-placement sweep + greedy placement search
  cost      the §4.3 DDoS-for-hire price arithmetic
  monitor   run all three protocols through the bandwidth monitor
run `dirsim <subcommand> --help` for the subcommand's options;
every subcommand also accepts --threads N (1 = serial sweeps)";

/// Subcommand table: name, one-line description, flag spec, handler.
type Handler = fn(&Args) -> Result<(), String>;
const SUBCOMMANDS: &[(&str, &str, &[FlagSpec], Handler)] = &[
    ("run", "one protocol run", RUN_SPEC, cmd_run),
    (
        "attack",
        "one run under a bandwidth-DDoS window set",
        ATTACK_SPEC,
        cmd_attack,
    ),
    (
        "sweep",
        "latency across a bandwidth grid",
        SWEEP_SPEC,
        cmd_sweep,
    ),
    (
        "clients",
        "client-visible availability through the distribution layer",
        CLIENTS_SPEC,
        cmd_clients,
    ),
    (
        "adversary",
        "budget-constrained strategy search over authorities + caches",
        ADVERSARY_SPEC,
        cmd_adversary,
    ),
    (
        "placement",
        "geographic cache-placement sweep + greedy placement search",
        PLACEMENT_SPEC,
        cmd_placement,
    ),
    (
        "cost",
        "the §4.3 DDoS-for-hire price arithmetic",
        COST_SPEC,
        cmd_cost,
    ),
    (
        "monitor",
        "run all three protocols through the bandwidth monitor",
        MONITOR_SPEC,
        cmd_monitor,
    ),
];

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(first) = raw.first() else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };
    if first == "-h" || first == "--help" {
        println!("{USAGE}");
        return;
    }
    let Some((sub, about, spec, handler)) =
        SUBCOMMANDS.iter().find(|(name, ..)| name == first).copied()
    else {
        eprintln!("unknown subcommand {first:?}\n{USAGE}");
        std::process::exit(2);
    };
    let outcome = parse_args(sub, about, spec, &raw[1..])
        .and_then(|args| args.apply_threads().map(|()| args))
        .and_then(|args| handler(&args));
    if let Err(error) = outcome {
        eprintln!("dirsim {sub}: {error}");
        eprintln!("{}", usage_for(sub, about, spec));
        std::process::exit(2);
    }
}
