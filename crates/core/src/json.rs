//! A minimal JSON value tree and writer.
//!
//! The workspace builds without network access, so the `serde` in the
//! dependency tree is a no-op shim — deriving `Serialize` documents
//! intent but cannot emit bytes. The `--json` output of the `dirsim`
//! subcommands therefore serializes through this module: experiment
//! drivers build a [`Json`] tree by hand and [`Json::render`] writes
//! spec-compliant JSON (escaped strings, `null` for non-finite
//! numbers). When the real serde lands, these builders become
//! `#[derive(Serialize)]` and this module retires.

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any finite number (non-finite values render as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// An array from values.
    pub fn arr(values: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(values.into_iter().collect())
    }

    /// A string value.
    pub fn str(value: impl Into<String>) -> Json {
        Json::Str(value.into())
    }

    /// Renders the tree as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(values) => {
                out.push('[');
                for (i, v) in values.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<f64> for Json {
    fn from(value: f64) -> Self {
        Json::Num(value)
    }
}

impl From<u64> for Json {
    fn from(value: u64) -> Self {
        Json::Num(value as f64)
    }
}

impl From<usize> for Json {
    fn from(value: usize) -> Self {
        Json::Num(value as f64)
    }
}

impl From<bool> for Json {
    fn from(value: bool) -> Self {
        Json::Bool(value)
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(value: Option<T>) -> Self {
        value.map_or(Json::Null, Into::into)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let value = Json::obj([
            ("name", Json::str("five-of-nine")),
            ("cost", Json::from(53.28)),
            ("hours", Json::from(24u64)),
            ("produced", Json::from(false)),
            ("offset", Json::from(None::<f64>)),
            ("rows", Json::arr([Json::from(1u64), Json::from(2u64)])),
        ]);
        assert_eq!(
            value.render(),
            r#"{"name":"five-of-nine","cost":53.28,"hours":24,"produced":false,"offset":null,"rows":[1,2]}"#
        );
    }

    #[test]
    fn escapes_strings_and_guards_non_finite() {
        let value = Json::arr([
            Json::str("a\"b\\c\nd\te\u{1}"),
            Json::Num(f64::NAN),
            Json::Num(f64::INFINITY),
        ]);
        assert_eq!(value.render(), "[\"a\\\"b\\\\c\\nd\\te\\u0001\",null,null]");
    }

    #[test]
    fn numbers_round_trip_at_full_precision() {
        // Rust's f64 Display prints the shortest round-tripping decimal;
        // egress byte counts (< 2^53) and downtimes stay exact.
        assert_eq!(
            Json::from(0.7134408978480847).render(),
            "0.7134408978480847"
        );
        assert_eq!(
            Json::from(9_007_199_254_740_991u64).render(),
            "9007199254740991"
        );
    }
}
