//! Signature domains shared by the three directory protocols.
//!
//! Every signature in the system is over a domain-separated SHA-256
//! digest, tagged with the run id so that messages cannot be replayed
//! across protocol instances (each hourly consensus run is one instance).

use partialtor_crypto::{sha256, Digest32, Signature, SigningKey, VerifyingKey};

/// Digest signed when an authority endorses a consensus document.
pub fn consensus_sig_digest(run_id: u64, consensus: Digest32) -> Digest32 {
    sha256::digest_parts(&[
        b"dir-consensus-sig",
        &run_id.to_le_bytes(),
        consensus.as_bytes(),
    ])
}

/// Digest signed by authority `subject` over its own document (the
/// `σ_i(i, h_i)` of the paper), or by an endorser over `(subject, h)`.
/// `digest = None` encodes ⊥ (the timeout endorsement `σ_k(j, ⊥)`).
pub fn doc_sig_digest(run_id: u64, subject: u8, digest: Option<Digest32>) -> Digest32 {
    let marker: &[u8] = match &digest {
        Some(d) => d.as_bytes(),
        None => b"<bottom>",
    };
    sha256::digest_parts(&[b"icps-doc", &run_id.to_le_bytes(), &[subject], marker])
}

/// Digest signed in the Dolev–Strong chain of the synchronous protocol.
pub fn ds_sig_digest(run_id: u64, pack_digest: Digest32) -> Digest32 {
    sha256::digest_parts(&[b"ds-chain", &run_id.to_le_bytes(), pack_digest.as_bytes()])
}

/// A signature over a consensus digest by one authority.
#[derive(Clone, Debug)]
pub struct SigRecord {
    /// The signing authority.
    pub authority: u8,
    /// The consensus digest signed.
    pub digest: Digest32,
    /// The signature over [`consensus_sig_digest`].
    pub signature: Signature,
}

impl SigRecord {
    /// Creates a record by signing `digest`.
    pub fn create(run_id: u64, authority: u8, digest: Digest32, key: &SigningKey) -> Self {
        let signature = key.sign(consensus_sig_digest(run_id, digest).as_bytes());
        SigRecord {
            authority,
            digest,
            signature,
        }
    }

    /// Verifies the record against the committee keys.
    pub fn verify(&self, run_id: u64, keys: &[VerifyingKey]) -> bool {
        let Some(key) = keys.get(self.authority as usize) else {
            return false;
        };
        key.verify(
            consensus_sig_digest(run_id, self.digest).as_bytes(),
            &self.signature,
        )
        .is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use partialtor_crypto::SigningKey;

    #[test]
    fn sig_record_roundtrip() {
        let key = SigningKey::from_seed([9; 32]);
        let keys = vec![key.verifying_key()];
        let digest = sha256::digest(b"consensus");
        let rec = SigRecord::create(5, 0, digest, &key);
        assert!(rec.verify(5, &keys));
        assert!(!rec.verify(6, &keys), "other run id must fail");
    }

    #[test]
    fn sig_record_rejects_unknown_authority() {
        let key = SigningKey::from_seed([9; 32]);
        let digest = sha256::digest(b"consensus");
        let mut rec = SigRecord::create(5, 0, digest, &key);
        rec.authority = 3;
        assert!(!rec.verify(5, &[key.verifying_key()]));
    }

    #[test]
    fn domains_are_separated() {
        let d = sha256::digest(b"x");
        assert_ne!(consensus_sig_digest(1, d), ds_sig_digest(1, d));
        assert_ne!(doc_sig_digest(1, 0, Some(d)), doc_sig_digest(1, 1, Some(d)));
        assert_ne!(doc_sig_digest(1, 0, Some(d)), doc_sig_digest(1, 0, None));
    }
}
