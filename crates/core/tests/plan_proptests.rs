//! Property tests for [`partialtor::adversary::AttackPlan`]
//! normalization: idempotence, sort stability, and cost invariance
//! under window splitting/duplication.

use partialtor::adversary::{AttackPlan, AttackWindow, Target};
use partialtor_simnet::{SimDuration, SimTime};
use proptest::prelude::*;

/// Flood rates drawn from the calibrated attack vocabulary (exact f64
/// values, so equal-rate windows are mergeable).
const FLOODS: [f64; 4] = [96.0, 100.0, 240.0, 1_000.0];

fn sampled_windows(specs: &[(u8, u8, u16, u16, u8)]) -> Vec<AttackWindow> {
    specs
        .iter()
        .map(|&(kind, idx, start_s, dur_s, flood)| {
            let target = if kind % 2 == 0 {
                Target::Authority(idx as usize % 9)
            } else {
                Target::Cache(idx as usize % 16)
            };
            AttackWindow::new(
                target,
                SimTime::from_secs(start_s as u64),
                SimDuration::from_secs(dur_s as u64 % 2_400),
                FLOODS[flood as usize % FLOODS.len()],
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Normalizing a normalized plan changes nothing.
    #[test]
    fn normalization_is_idempotent(
        specs in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), 0u16..7_200, 0u16..3_600, any::<u8>()),
            0..12,
        ),
    ) {
        let plan = AttackPlan::new(sampled_windows(&specs));
        let again = AttackPlan::new(plan.windows().to_vec());
        prop_assert_eq!(&plan, &again);
    }

    /// Normalized windows come out sorted by (start, target) with no
    /// same-target overlap, regardless of input order.
    #[test]
    fn windows_are_sorted_and_disjoint_per_target(
        specs in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), 0u16..7_200, 0u16..3_600, any::<u8>()),
            0..12,
        ),
    ) {
        let plan = AttackPlan::new(sampled_windows(&specs));
        let mut reversed = sampled_windows(&specs);
        reversed.reverse();
        prop_assert_eq!(&plan, &AttackPlan::new(reversed), "input order is irrelevant");
        for pair in plan.windows().windows(2) {
            prop_assert!(
                (pair[0].start, pair[0].target) <= (pair[1].start, pair[1].target),
                "sorted by (start, target)"
            );
            if pair[0].target == pair[1].target {
                prop_assert!(
                    pair[0].end() <= pair[1].start,
                    "same-target windows must not overlap after normalization"
                );
            }
        }
    }

    /// Splitting a window in two and duplicating windows never changes
    /// the campaign price, and adding a window never lowers it.
    #[test]
    fn cost_is_invariant_under_split_and_monotone_under_union(
        specs in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), 0u16..7_200, 2u16..3_600, any::<u8>()),
            1..10,
        ),
        pick in any::<proptest::sample::Index>(),
    ) {
        let windows = sampled_windows(&specs);
        let plan = AttackPlan::new(windows.clone());

        // Split one window at its midpoint.
        let victim = windows[pick.index(windows.len())];
        let half = SimDuration::from_micros(victim.duration.as_micros() / 2);
        let mut split = windows.clone();
        split.retain(|w| w != &victim);
        split.push(AttackWindow { duration: half, ..victim });
        split.push(AttackWindow {
            start: victim.start + half,
            duration: victim.duration - half,
            ..victim
        });
        let split_plan = AttackPlan::new(split);
        prop_assert_eq!(&split_plan, &plan, "split halves re-merge");
        prop_assert!((split_plan.cost() - plan.cost()).abs() < 1e-9);

        // Duplicate a window: the plan and its price are unchanged.
        let mut duplicated = windows.clone();
        duplicated.push(victim);
        prop_assert!((AttackPlan::new(duplicated).cost() - plan.cost()).abs() < 1e-9);

        // Union with more windows never gets cheaper.
        let extra = AttackPlan::new(vec![AttackWindow::new(
            Target::Authority(0),
            SimTime::from_secs(50),
            SimDuration::from_secs(600),
            240.0,
        )]);
        prop_assert!(plan.union(&extra).cost() + 1e-9 >= plan.cost());
    }
}

/// The paper's price pin, via the typed builder (satellite requirement).
#[test]
fn five_of_nine_costs_53_28_per_month() {
    assert!((AttackPlan::five_of_nine().cost_per_month() - 53.28).abs() < 1e-6);
}
