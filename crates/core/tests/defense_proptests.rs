//! Property tests for [`partialtor::defense::DefensePlan`]
//! normalization: idempotence, lever-order independence, and cost
//! invariance under lever splitting/duplication — the defender-side
//! mirror of `plan_proptests.rs`.

use partialtor::defense::{DefenseLever, DefensePlan};
use partialtor_dirdist::CachePlacement;
use proptest::prelude::*;

/// Rate-limit scales drawn from an exact-f64 vocabulary, so equal-scale
/// levers merge exactly (the `max` in normalization is bitwise).
const SCALES: [f64; 5] = [0.5, 1.0, 1.5, 2.0, 4.0];

const PLACEMENTS: [CachePlacement; 4] = [
    CachePlacement::Uniform,
    CachePlacement::Spread,
    CachePlacement::ClientWeighted,
    CachePlacement::Authorities,
];

fn sampled_levers(specs: &[(u8, u8, u16, u8)]) -> Vec<DefenseLever> {
    specs
        .iter()
        .map(|&(kind, small, wide, pick)| match kind % 5 {
            0 => DefenseLever::Blocklist {
                trigger_hours: small as u64 % 12,
            },
            1 => DefenseLever::AddCaches {
                count: small as usize % 24,
                placement: PLACEMENTS[pick as usize % PLACEMENTS.len()].clone(),
            },
            2 => DefenseLever::ExtendLifetime {
                extra_valid_secs: wide as u64 * 10,
            },
            3 => DefenseLever::RateLimit {
                interval_scale: SCALES[pick as usize % SCALES.len()],
            },
            _ => DefenseLever::Detector {
                trigger_hours: small as u64 % 12,
            },
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Rebuilding a plan from its own canonical levers is the identity.
    #[test]
    fn normalization_is_idempotent(
        specs in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), 0u16..3_600, any::<u8>()),
            0..10,
        ),
    ) {
        let plan = DefensePlan::new(sampled_levers(&specs));
        let again = DefensePlan::new(plan.levers());
        prop_assert_eq!(&plan, &again);
        prop_assert!(
            (again.cost_per_month() - plan.cost_per_month()).abs() < 1e-9,
            "round-tripping must not change the price"
        );
    }

    /// The order levers are listed in is irrelevant — the plan and its
    /// price only depend on the normalized sum.
    #[test]
    fn lever_order_is_irrelevant(
        specs in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), 0u16..3_600, any::<u8>()),
            0..10,
        ),
    ) {
        let levers = sampled_levers(&specs);
        let mut reversed = levers.clone();
        reversed.reverse();
        let plan = DefensePlan::new(levers);
        let flipped = DefensePlan::new(reversed);
        prop_assert_eq!(&plan, &flipped);
        prop_assert!((plan.cost_per_month() - flipped.cost_per_month()).abs() < 1e-9);
    }

    /// Splitting an added-cache lever in two and duplicating any
    /// non-additive lever leaves the plan — and therefore its price —
    /// unchanged, and union never forgets a lever.
    #[test]
    fn cost_is_invariant_under_split_and_duplication(
        specs in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), 0u16..3_600, any::<u8>()),
            1..10,
        ),
        pick in any::<proptest::sample::Index>(),
        extra in 1u8..20,
    ) {
        let levers = sampled_levers(&specs);
        let plan = DefensePlan::new(levers.clone());
        let canonical = plan.levers();

        // Split every cache lever at `extra` caches: the counts sum
        // back during normalization.
        let mut split: Vec<DefenseLever> = Vec::new();
        for lever in &canonical {
            match lever {
                DefenseLever::AddCaches { count, placement } if *count > 1 => {
                    let first = (*count).min(extra as usize);
                    split.push(DefenseLever::AddCaches {
                        count: first,
                        placement: placement.clone(),
                    });
                    if *count > first {
                        split.push(DefenseLever::AddCaches {
                            count: count - first,
                            placement: placement.clone(),
                        });
                    }
                }
                other => split.push(other.clone()),
            }
        }
        let split_plan = DefensePlan::new(split);
        prop_assert_eq!(&split_plan, &plan, "split cache levers re-merge");
        prop_assert!((split_plan.cost_per_month() - plan.cost_per_month()).abs() < 1e-9);

        // Duplicate one non-additive lever (min/max absorption): the
        // plan and its price are unchanged.
        if !canonical.is_empty() {
            let victim = canonical[pick.index(canonical.len())].clone();
            if !matches!(victim, DefenseLever::AddCaches { .. }) {
                let mut duplicated = canonical.clone();
                duplicated.push(victim);
                let doubled = DefensePlan::new(duplicated);
                prop_assert_eq!(&doubled, &plan);
                prop_assert!(
                    (doubled.cost_per_month() - plan.cost_per_month()).abs() < 1e-9
                );
            }
        }

        // Union with itself is the identity for non-additive levers
        // and doubles only the cache count.
        let self_union = plan.union(&plan);
        prop_assert_eq!(
            DefensePlan::new(self_union.levers()),
            self_union,
            "unions stay normalized"
        );
    }
}

/// The defender-side price pins mirroring the attacker's $53.28 pin:
/// the playbook anchors the frontier grid at these exact prices.
#[test]
fn the_default_cost_model_prices_the_playbook_anchors() {
    assert_eq!(DefensePlan::empty().cost_per_month(), 0.0);
    assert!((DefensePlan::blocklist(6).cost_per_month() - 30.0).abs() < 1e-9);
    assert!((DefensePlan::detector(3).cost_per_month() - 40.0).abs() < 1e-9);
    assert!(
        (DefensePlan::add_caches(8, CachePlacement::ClientWeighted).cost_per_month() - 40.0).abs()
            < 1e-9
    );
    assert!((DefensePlan::extend_lifetime(3 * 3_600).cost_per_month() - 30.0).abs() < 1e-9);
    assert!((DefensePlan::rate_limit(2.0).cost_per_month() - 15.0).abs() < 1e-9);
}
