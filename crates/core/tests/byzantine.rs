//! Byzantine-authority scenarios: the executable version of Table 1's
//! security column.
//!
//! * The **current** protocol is insecure under equivocation (Luo et al.
//!   [23]): one equivocating authority splits the honest vote sets and no
//!   digest reaches a signature majority.
//! * The **synchronous** protocol neutralizes the same behaviour: the
//!   Dolev–Strong agreement on the designated pack gives every correct
//!   authority the same vote set.
//! * The **ICPS** protocol excludes the equivocator with an
//!   `AbsentEquivocation` proof and still reaches agreement; silent and
//!   selective-disclosure authorities exercise the ⊥-endorsement and
//!   fetch paths.

use partialtor::calibration::{self, vote_size_bytes};
use partialtor::document::DirDocument;
use partialtor::protocols::{
    CurrentAuthority, CurrentByzantineMode, CurrentConfig, FetchPolicy, IcpsAuthority,
    IcpsByzantineMode, IcpsConfig, SyncAuthority, SyncByzantineMode, SyncConfig, VectorEntry,
};
use partialtor_crypto::SigningKey;
use partialtor_simnet::prelude::*;

const N: usize = 9;
const RELAYS: u64 = 1_000;

fn committee(seed: u64) -> (Vec<SigningKey>, Vec<partialtor_crypto::VerifyingKey>) {
    let signers: Vec<SigningKey> = (0..N)
        .map(|i| SigningKey::from_seed([i as u8 + seed as u8 + 1; 32]))
        .collect();
    let keys = signers.iter().map(|k| k.verifying_key()).collect();
    (signers, keys)
}

fn sim_config(seed: u64) -> SimConfig {
    SimConfig {
        seed,
        default_up_bps: calibration::AUTHORITY_LINK_BPS,
        default_down_bps: calibration::AUTHORITY_LINK_BPS,
        wire_overhead_bytes: 64,
        collect_logs: false,
        latency_jitter: 0.0,
    }
}

fn run_current_with(byz: CurrentByzantineMode) -> Simulation<CurrentAuthority> {
    let (signers, keys) = committee(5);
    let nodes: Vec<CurrentAuthority> = (0..N)
        .map(|i| {
            CurrentAuthority::new(CurrentConfig {
                run_id: 60,
                index: i as u8,
                n: N,
                round: calibration::round_duration(),
                my_doc: DirDocument::synthetic(60, i as u8, vote_size_bytes(RELAYS)),
                signing: signers[i].clone(),
                keys: keys.clone(),
                byzantine: if i == 0 {
                    byz
                } else {
                    CurrentByzantineMode::Honest
                },
            })
        })
        .collect();
    let mut sim = Simulation::new(authority_topology(5), nodes, sim_config(5));
    sim.run_until(SimTime::from_secs(700));
    sim
}

#[test]
fn equivocation_breaks_the_current_protocol() {
    let sim = run_current_with(CurrentByzantineMode::EquivocateVotes);
    // The honest authorities split into two digest camps, and the
    // equivocator countersigns both — so *two conflicting consensus
    // documents* both collect a signature majority. This is exactly the
    // safety violation of Luo et al. [23] that motivates the synchronous
    // fix, and the reason the "Current" row of Table 1 reads "insecure".
    let mut camps: std::collections::BTreeMap<_, usize> = std::collections::BTreeMap::new();
    for i in 1..N {
        let outcome = sim.node(NodeId(i)).outcome().expect("finished");
        assert!(
            outcome.success,
            "each camp should reach a (conflicting) majority: {outcome:?}"
        );
        *camps.entry(outcome.digest.expect("digest")).or_default() += 1;
    }
    assert_eq!(
        camps.len(),
        2,
        "two conflicting valid consensus documents must coexist: {camps:?}"
    );
    for (&digest, &count) in &camps {
        assert_eq!(count, 4, "camp of {digest:?} should hold 4 honest members");
    }
}

#[test]
fn honest_baseline_for_comparison() {
    let sim = run_current_with(CurrentByzantineMode::Honest);
    let successes = (0..N)
        .filter(|&i| sim.node(NodeId(i)).outcome().map(|o| o.success) == Some(true))
        .count();
    assert_eq!(successes, N);
}

#[test]
fn synchronous_protocol_neutralizes_equivocation() {
    let (signers, keys) = committee(6);
    // Authority 3 equivocates; the designated sender (0) is honest.
    let nodes: Vec<SyncAuthority> = (0..N)
        .map(|i| {
            SyncAuthority::new(SyncConfig {
                run_id: 61,
                index: i as u8,
                n: N,
                designated: 0,
                round: calibration::round_duration(),
                my_doc: DirDocument::synthetic(61, i as u8, vote_size_bytes(RELAYS)),
                signing: signers[i].clone(),
                keys: keys.clone(),
                byzantine: if i == 3 {
                    SyncByzantineMode::EquivocateProposal
                } else {
                    SyncByzantineMode::Honest
                },
            })
        })
        .collect();
    let mut sim = Simulation::new(authority_topology(6), nodes, sim_config(6));
    sim.run_until(SimTime::from_secs(700));

    let digests: std::collections::BTreeSet<_> = (0..N)
        .filter(|&i| i != 3)
        .filter_map(|i| sim.node(NodeId(i)).outcome().and_then(|o| o.digest))
        .collect();
    assert_eq!(
        digests.len(),
        1,
        "all correct authorities must aggregate the agreed pack identically"
    );
    let successes = (0..N)
        .filter(|&i| i != 3)
        .filter(|&i| sim.node(NodeId(i)).outcome().map(|o| o.success) == Some(true))
        .count();
    assert!(successes >= 5, "{successes} correct authorities succeeded");
}

fn build_icps(
    seed: u64,
    run_id: u64,
    byz: impl Fn(usize) -> IcpsByzantineMode,
) -> Simulation<IcpsAuthority> {
    let (signers, keys) = committee(seed);
    let nodes: Vec<IcpsAuthority> = (0..N)
        .map(|i| {
            IcpsAuthority::new(IcpsConfig {
                run_id,
                index: i as u8,
                n: N,
                f: calibration::partial_synchrony_f(N),
                dissemination_timeout: calibration::dissemination_timeout(),
                bft_timeout_ms: calibration::BFT_BASE_TIMEOUT_MS,
                my_doc: DirDocument::synthetic(run_id, i as u8, vote_size_bytes(RELAYS)),
                signing: signers[i].clone(),
                keys: keys.clone(),
                byzantine: byz(i),
                fetch_policy: FetchPolicy::default(),
            })
        })
        .collect();
    let mut sim = Simulation::new(authority_topology(seed), nodes, sim_config(seed));
    sim.run_until(SimTime::from_secs(3_600));
    sim
}

fn assert_icps_agreement(sim: &Simulation<IcpsAuthority>, byzantine: &[usize]) {
    let mut digests = std::collections::BTreeSet::new();
    for i in 0..N {
        if byzantine.contains(&i) {
            continue;
        }
        let o = sim.node(NodeId(i)).outcome();
        assert!(o.success, "honest authority {i} failed: {o:?}");
        digests.insert(o.digest.expect("digest"));
    }
    assert_eq!(digests.len(), 1, "honest authorities diverged");
}

#[test]
fn icps_excludes_an_equivocating_authority_with_proof() {
    let sim = build_icps(7, 62, |i| {
        if i == 2 {
            IcpsByzantineMode::EquivocateDocuments
        } else {
            IcpsByzantineMode::Honest
        }
    });
    assert_icps_agreement(&sim, &[2]);
    // Every honest authority's decided vector carries an explicit
    // equivocation (or at least a ⊥) entry for authority 2 — its document
    // must never be part of the consensus.
    let mut saw_equivocation_proof = false;
    for i in [0usize, 1, 3, 4, 5, 6, 7, 8] {
        let vector = sim
            .node(NodeId(i))
            .decided_vector()
            .expect("honest node decided");
        let entry = &vector.entries[2];
        assert!(
            entry.digest().is_none(),
            "equivocator's document must be excluded at node {i}"
        );
        if matches!(entry, VectorEntry::AbsentEquivocation { .. }) {
            saw_equivocation_proof = true;
        }
    }
    assert!(
        saw_equivocation_proof,
        "at least one decided vector should carry the equivocation proof"
    );
}

#[test]
fn icps_handles_silent_authorities_with_bottom_endorsements() {
    let silent = [4usize, 8];
    let sim = build_icps(8, 63, |i| {
        if silent.contains(&i) {
            IcpsByzantineMode::Silent
        } else {
            IcpsByzantineMode::Honest
        }
    });
    assert_icps_agreement(&sim, &silent);
    let vector = sim.node(NodeId(0)).decided_vector().expect("decided");
    for &s in &silent {
        assert!(
            matches!(&vector.entries[s], VectorEntry::AbsentTimeout { .. }),
            "silent authority {s} must be ⊥ with timeout endorsements"
        );
    }
    // Common set validity: at least n − f = 7 documents present.
    assert!(vector.present().count() >= N - 2);
}

#[test]
fn icps_selective_disclosure_forces_fetches_and_still_agrees() {
    let f = calibration::partial_synchrony_f(N);
    let sim = build_icps(9, 64, |i| {
        if i == 1 {
            // Disclose to exactly f + 1 peers: enough endorsements for a
            // Present entry, but most nodes must fetch the bytes later.
            IcpsByzantineMode::SelectiveSend(f + 1)
        } else {
            IcpsByzantineMode::Honest
        }
    });
    assert_icps_agreement(&sim, &[1]);
    let vector = sim.node(NodeId(0)).decided_vector().expect("decided");
    if vector.entries[1].digest().is_some() {
        // The selectively-disclosed document made it into the vector, so
        // the aggregation sub-protocol must have fetched it somewhere.
        let fetches = sim.metrics().by_kind().get("FETCH-REQ").map(|k| k.count);
        assert!(
            fetches.unwrap_or(0) > 0,
            "fetch path must have been exercised: {:?}",
            sim.metrics().by_kind()
        );
    } else {
        // Otherwise it was excluded as ⊥ — also a valid outcome; the
        // honest documents still form a valid common set.
        assert!(vector.present().count() >= N - f);
    }
}

#[test]
fn icps_tolerates_equivocator_plus_silent_node() {
    // f = 2 total faults of mixed kind.
    let sim = build_icps(10, 65, |i| match i {
        3 => IcpsByzantineMode::EquivocateDocuments,
        6 => IcpsByzantineMode::Silent,
        _ => IcpsByzantineMode::Honest,
    });
    assert_icps_agreement(&sim, &[3, 6]);
}

#[test]
fn icps_is_robust_to_latency_jitter() {
    // 40% propagation jitter on every message: agreement and validity
    // must be unaffected (timing noise is not a fault).
    let (signers, keys) = committee(12);
    let nodes: Vec<IcpsAuthority> = (0..N)
        .map(|i| {
            IcpsAuthority::new(IcpsConfig {
                run_id: 66,
                index: i as u8,
                n: N,
                f: calibration::partial_synchrony_f(N),
                dissemination_timeout: calibration::dissemination_timeout(),
                bft_timeout_ms: calibration::BFT_BASE_TIMEOUT_MS,
                my_doc: DirDocument::synthetic(66, i as u8, vote_size_bytes(RELAYS)),
                signing: signers[i].clone(),
                keys: keys.clone(),
                byzantine: IcpsByzantineMode::Honest,
                fetch_policy: FetchPolicy::default(),
            })
        })
        .collect();
    let config = SimConfig {
        latency_jitter: 0.4,
        ..sim_config(12)
    };
    let mut sim = Simulation::new(authority_topology(12), nodes, config);
    sim.run_until(SimTime::from_secs(3_600));
    assert_icps_agreement(&sim, &[]);
}
