//! Minimal hexadecimal encoding/decoding used for fingerprints and logs.

/// Encodes `bytes` as a lowercase hexadecimal string.
///
/// # Examples
///
/// ```
/// assert_eq!(partialtor_crypto::hex::encode(&[0xde, 0xad]), "dead");
/// ```
pub fn encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(char::from_digit((b >> 4) as u32, 16).expect("nibble < 16"));
        out.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble < 16"));
    }
    out
}

/// Encodes `bytes` as an uppercase hexadecimal string (Tor fingerprint style).
pub fn encode_upper(bytes: &[u8]) -> String {
    encode(bytes).to_ascii_uppercase()
}

/// Decodes a hexadecimal string into bytes.
///
/// Returns `None` if the input has odd length or contains a non-hex digit.
///
/// # Examples
///
/// ```
/// assert_eq!(partialtor_crypto::hex::decode("dead"), Some(vec![0xde, 0xad]));
/// assert_eq!(partialtor_crypto::hex::decode("xyz"), None);
/// ```
pub fn decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let digits: Vec<u8> = s
        .chars()
        .map(|c| c.to_digit(16).map(|d| d as u8))
        .collect::<Option<_>>()?;
    Some(digits.chunks(2).map(|p| (p[0] << 4) | p[1]).collect())
}

/// Decodes a hex string into a fixed-size array, or `None` on size mismatch.
pub fn decode_array<const N: usize>(s: &str) -> Option<[u8; N]> {
    let v = decode(s)?;
    v.try_into().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let data = [0u8, 1, 2, 0xff, 0x80, 0x7f];
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn rejects_odd_length() {
        assert_eq!(decode("abc"), None);
    }

    #[test]
    fn rejects_bad_digit() {
        assert_eq!(decode("zz"), None);
    }

    #[test]
    fn upper_matches_lower() {
        assert_eq!(encode_upper(&[0xab]), "AB");
    }

    #[test]
    fn decode_array_size_check() {
        assert_eq!(decode_array::<2>("dead"), Some([0xde, 0xad]));
        assert_eq!(decode_array::<3>("dead"), None);
    }
}
