//! From-scratch cryptographic primitives for the `partialtor-rs` reproduction.
//!
//! The paper's protocols rely on collision-resistant digests (32 bytes) and
//! unforgeable signatures (64 bytes). This crate implements the exact
//! primitives the Tor directory protocol would deploy — SHA-256 / SHA-512 and
//! Ed25519 (RFC 8032) — without any external cryptography dependencies, so
//! that the simulated message sizes (`κ` = 64 B signatures, 32 B digests in
//! the paper's complexity analysis) are faithful.
//!
//! # Scope
//!
//! The implementation is *functionally* complete and validated against the
//! RFC 8032 and FIPS 180-4 test vectors, but it is written for a research
//! simulator: scalar multiplication is not constant-time and no zeroization
//! is performed. Do not lift it into an adversarial production environment
//! as-is.
//!
//! # Examples
//!
//! ```
//! use partialtor_crypto::{sha256, SigningKey};
//!
//! let key = SigningKey::from_seed([7u8; 32]);
//! let msg = b"consensus document";
//! let sig = key.sign(msg);
//! key.verifying_key().verify(msg, &sig).expect("valid signature");
//!
//! let digest = sha256::digest(msg);
//! assert_eq!(digest.as_bytes().len(), 32);
//! ```

pub mod ed25519;
pub mod hex;
pub mod sha256;
pub mod sha512;

pub use ed25519::{Signature, SignatureError, SigningKey, VerifyingKey};
pub use sha256::Digest32;

/// Convenience alias used by the directory protocols for document digests.
pub type DocDigest = Digest32;
