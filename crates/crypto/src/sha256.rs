//! SHA-256 (FIPS 180-4) with a streaming interface.

use crate::hex;

/// Fractional parts of the cube roots of the first 64 primes.
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Fractional parts of the square roots of the first 8 primes.
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// A 32-byte digest value with hex formatting, ordering and truncation
/// helpers.
///
/// Used across the workspace for document digests and authority
/// fingerprints.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Digest32([u8; 32]);

impl Digest32 {
    /// Wraps raw digest bytes.
    pub const fn from_bytes(bytes: [u8; 32]) -> Self {
        Self(bytes)
    }

    /// Returns the digest bytes.
    pub const fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Returns the digest as a lowercase hex string.
    pub fn to_hex(&self) -> String {
        hex::encode(&self.0)
    }

    /// Returns the first `n` bytes as uppercase hex (Tor fingerprint style).
    pub fn short_hex(&self, n: usize) -> String {
        hex::encode_upper(&self.0[..n.min(32)])
    }

    /// Parses a 64-character hex string.
    pub fn from_hex(s: &str) -> Option<Self> {
        hex::decode_array::<32>(s).map(Self)
    }
}

impl std::fmt::Debug for Digest32 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Digest32({})", self.short_hex(8))
    }
}

impl std::fmt::Display for Digest32 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl AsRef<[u8]> for Digest32 {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Streaming SHA-256 hasher.
///
/// # Examples
///
/// ```
/// use partialtor_crypto::sha256::Hasher;
///
/// let mut h = Hasher::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(
///     h.finalize().to_hex(),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// ```
#[derive(Clone)]
pub struct Hasher {
    state: [u32; 8],
    buffer: [u8; 64],
    buffered: usize,
    length_bytes: u64,
}

impl Default for Hasher {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher {
    /// Creates a hasher in the initial state.
    pub fn new() -> Self {
        Self {
            state: H0,
            buffer: [0u8; 64],
            buffered: 0,
            length_bytes: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.length_bytes = self.length_bytes.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buffered > 0 {
            let take = rest.len().min(64 - self.buffered);
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&rest[..take]);
            self.buffered += take;
            rest = &rest[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            let block: &[u8; 64] = block.try_into().expect("split at 64");
            self.compress(block);
            rest = tail;
        }
        if !rest.is_empty() {
            self.buffer[..rest.len()].copy_from_slice(rest);
            self.buffered = rest.len();
        }
    }

    /// Consumes the hasher and returns the digest.
    pub fn finalize(mut self) -> Digest32 {
        let bit_len = self.length_bytes.wrapping_mul(8);
        self.raw_update_padding();
        let mut lenblock = [0u8; 8];
        lenblock.copy_from_slice(&bit_len.to_be_bytes());
        self.raw_absorb(&lenblock);
        debug_assert_eq!(self.buffered, 0);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest32(out)
    }

    /// Appends the 0x80 byte and zero padding so that 8 bytes remain in the
    /// final block.
    fn raw_update_padding(&mut self) {
        self.raw_absorb(&[0x80]);
        while self.buffered != 56 {
            self.raw_absorb(&[0]);
        }
    }

    /// Absorbs bytes without advancing the message length counter.
    fn raw_absorb(&mut self, data: &[u8]) {
        for &b in data {
            self.buffer[self.buffered] = b;
            self.buffered += 1;
            if self.buffered == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let temp1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256 of `data`.
pub fn digest(data: &[u8]) -> Digest32 {
    let mut h = Hasher::new();
    h.update(data);
    h.finalize()
}

/// One-shot SHA-256 over a sequence of byte slices, avoiding concatenation.
pub fn digest_parts(parts: &[&[u8]]) -> Digest32 {
    let mut h = Hasher::new();
    for part in parts {
        h.update(part);
    }
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex_digest(data: &[u8]) -> String {
        digest(data).to_hex()
    }

    #[test]
    fn fips_empty() {
        assert_eq!(
            hex_digest(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn fips_abc() {
        assert_eq!(
            hex_digest(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn fips_two_blocks() {
        assert_eq!(
            hex_digest(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn fips_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex_digest(&data),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        for split in [0, 1, 63, 64, 65, 127, 500, 999, 1000] {
            let mut h = Hasher::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), digest(&data), "split at {split}");
        }
    }

    #[test]
    fn digest_parts_matches_concat() {
        let a = b"hello ";
        let b = b"world";
        let mut concat = Vec::new();
        concat.extend_from_slice(a);
        concat.extend_from_slice(b);
        assert_eq!(digest_parts(&[a, b]), digest(&concat));
    }

    #[test]
    fn digest32_hex_roundtrip() {
        let d = digest(b"roundtrip");
        assert_eq!(Digest32::from_hex(&d.to_hex()), Some(d));
    }

    #[test]
    fn digest32_short_hex() {
        let d = Digest32::from_bytes([0xab; 32]);
        assert_eq!(d.short_hex(2), "ABAB");
        assert_eq!(d.short_hex(64).len(), 64);
    }

    #[test]
    fn boundary_lengths() {
        // Exercise padding around the 56-byte boundary where the length field
        // forces an extra block.
        for len in 54..=66usize {
            let data = vec![0x5au8; len];
            let d1 = digest(&data);
            let mut h = Hasher::new();
            for byte in &data {
                h.update(std::slice::from_ref(byte));
            }
            assert_eq!(h.finalize(), d1, "len {len}");
        }
    }
}
