//! Ed25519 signatures (RFC 8032).
//!
//! Keys are derived from a 32-byte seed exactly as specified: the seed is
//! expanded with SHA-512, the lower half is clamped into the secret scalar
//! and the upper half seeds the deterministic nonce. Verification uses the
//! strict equation `[S]B = R + [k]A` with canonical-encoding checks on both
//! `S` and `R`.

pub mod field;
pub mod point;
pub mod scalar;

use crate::sha512;
use point::EdwardsPoint;
use scalar::Scalar;

/// Errors returned by signature verification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SignatureError {
    /// The signature's `S` component is not a canonical scalar.
    NonCanonicalScalar,
    /// The signer's public key does not decode to a curve point.
    InvalidPublicKey,
    /// The verification equation failed.
    BadSignature,
}

impl std::fmt::Display for SignatureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SignatureError::NonCanonicalScalar => write!(f, "non-canonical signature scalar"),
            SignatureError::InvalidPublicKey => write!(f, "invalid public key encoding"),
            SignatureError::BadSignature => write!(f, "signature verification failed"),
        }
    }
}

impl std::error::Error for SignatureError {}

/// A detached Ed25519 signature (R ‖ S, 64 bytes on the wire).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct Signature {
    r: [u8; 32],
    s: [u8; 32],
}

impl Signature {
    /// Wire size in bytes (the `κ` of the paper's complexity analysis).
    pub const BYTES: usize = 64;

    /// Serializes as R ‖ S.
    pub fn to_bytes(&self) -> [u8; 64] {
        let mut out = [0u8; 64];
        out[..32].copy_from_slice(&self.r);
        out[32..].copy_from_slice(&self.s);
        out
    }

    /// Parses an R ‖ S encoding. Canonicality is checked at verify time.
    pub fn from_bytes(bytes: &[u8; 64]) -> Self {
        let mut r = [0u8; 32];
        let mut s = [0u8; 32];
        r.copy_from_slice(&bytes[..32]);
        s.copy_from_slice(&bytes[32..]);
        Signature { r, s }
    }
}

/// An Ed25519 verifying (public) key.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct VerifyingKey {
    compressed: [u8; 32],
}

impl VerifyingKey {
    /// Wire size in bytes.
    pub const BYTES: usize = 32;

    /// Parses a compressed public key, rejecting undecodable encodings.
    pub fn from_bytes(bytes: &[u8; 32]) -> Result<Self, SignatureError> {
        EdwardsPoint::decompress(bytes).ok_or(SignatureError::InvalidPublicKey)?;
        Ok(VerifyingKey { compressed: *bytes })
    }

    /// The compressed encoding.
    pub fn to_bytes(&self) -> [u8; 32] {
        self.compressed
    }

    /// Verifies `signature` over `message`.
    ///
    /// Implements the strict check: rejects non-canonical `S`, undecodable
    /// `R`/`A`, and failures of `[S]B = R + [k]A` (compared in compressed
    /// form, i.e. cofactorless verification like Tor's ed25519 use).
    pub fn verify(&self, message: &[u8], signature: &Signature) -> Result<(), SignatureError> {
        let s =
            Scalar::from_canonical_bytes(&signature.s).ok_or(SignatureError::NonCanonicalScalar)?;
        let a =
            EdwardsPoint::decompress(&self.compressed).ok_or(SignatureError::InvalidPublicKey)?;
        let k_bytes = sha512::digest_parts(&[&signature.r, &self.compressed, message]);
        let k = Scalar::from_bytes_mod_order_wide(&k_bytes);

        // R' = [S]B − [k]A must re-encode exactly to the signature's R.
        let r_prime = EdwardsPoint::basepoint_mul(&s).add(&a.scalar_mul(&k).neg());
        if r_prime.compress() == signature.r {
            Ok(())
        } else {
            Err(SignatureError::BadSignature)
        }
    }
}

/// An Ed25519 signing (secret) key.
#[derive(Clone)]
pub struct SigningKey {
    seed: [u8; 32],
    secret_scalar: Scalar,
    prefix: [u8; 32],
    public: VerifyingKey,
}

impl SigningKey {
    /// Derives a signing key from a 32-byte seed (RFC 8032 key generation).
    pub fn from_seed(seed: [u8; 32]) -> Self {
        let h = sha512::digest(&seed);
        let mut scalar_bytes = [0u8; 32];
        scalar_bytes.copy_from_slice(&h[..32]);
        scalar_bytes[0] &= 248;
        scalar_bytes[31] &= 127;
        scalar_bytes[31] |= 64;
        // Reducing mod l is sound: B has order l, so [s]B = [s mod l]B.
        let secret_scalar = Scalar::from_bytes_mod_order(&scalar_bytes);
        let mut prefix = [0u8; 32];
        prefix.copy_from_slice(&h[32..]);
        let public_point = EdwardsPoint::basepoint_mul(&secret_scalar);
        let public = VerifyingKey {
            compressed: public_point.compress(),
        };
        SigningKey {
            seed,
            secret_scalar,
            prefix,
            public,
        }
    }

    /// Generates a key from an RNG.
    pub fn generate<R: rand::RngCore>(rng: &mut R) -> Self {
        let mut seed = [0u8; 32];
        rng.fill_bytes(&mut seed);
        Self::from_seed(seed)
    }

    /// Returns the seed this key was derived from.
    pub fn seed(&self) -> &[u8; 32] {
        &self.seed
    }

    /// Returns the corresponding public key.
    pub fn verifying_key(&self) -> VerifyingKey {
        self.public
    }

    /// Signs `message` (deterministic per RFC 8032).
    pub fn sign(&self, message: &[u8]) -> Signature {
        let r_bytes = sha512::digest_parts(&[&self.prefix, message]);
        let r = Scalar::from_bytes_mod_order_wide(&r_bytes);
        let r_point = EdwardsPoint::basepoint_mul(&r).compress();
        let k_bytes = sha512::digest_parts(&[&r_point, &self.public.compressed, message]);
        let k = Scalar::from_bytes_mod_order_wide(&k_bytes);
        let s = r.add(&k.mul(&self.secret_scalar));
        Signature {
            r: r_point,
            s: s.to_bytes(),
        }
    }
}

impl std::fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print the seed.
        write!(
            f,
            "SigningKey(pub={})",
            crate::hex::encode(&self.public.compressed[..8])
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    struct Vector {
        seed: &'static str,
        public: &'static str,
        message: &'static str,
        signature: &'static str,
    }

    /// RFC 8032 §7.1 test vectors 1–3.
    const VECTORS: [Vector; 3] = [
        Vector {
            seed: "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60",
            public: "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a",
            message: "",
            signature: "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155\
                        5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b",
        },
        Vector {
            seed: "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb",
            public: "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c",
            message: "72",
            signature: "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da\
                        085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00",
        },
        Vector {
            seed: "c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7",
            public: "fc51cd8e6218a1a38da47ed00230f0580816ed13ba3303ac5deb911548908025",
            message: "af82",
            signature: "6291d657deec24024827e69c3abe01a30ce548a284743a445e3680d7db5ac3ac\
                        18ff9b538d16f290ae67f760984dc6594a7c15e9716ed28dc027beceea1ec40a",
        },
    ];

    fn clean(s: &str) -> String {
        s.replace(char::is_whitespace, "")
    }

    #[test]
    fn rfc8032_vectors() {
        for (i, v) in VECTORS.iter().enumerate() {
            let seed: [u8; 32] = hex::decode_array(&clean(v.seed)).unwrap();
            let key = SigningKey::from_seed(seed);
            assert_eq!(
                hex::encode(&key.verifying_key().to_bytes()),
                clean(v.public),
                "public key, vector {i}"
            );
            let message = hex::decode(&clean(v.message)).unwrap();
            let sig = key.sign(&message);
            assert_eq!(
                hex::encode(&sig.to_bytes()),
                clean(v.signature),
                "signature, vector {i}"
            );
            key.verifying_key()
                .verify(&message, &sig)
                .expect("vector verifies");
        }
    }

    #[test]
    fn rejects_wrong_message() {
        let key = SigningKey::from_seed([1u8; 32]);
        let sig = key.sign(b"hello");
        assert_eq!(
            key.verifying_key().verify(b"hellp", &sig),
            Err(SignatureError::BadSignature)
        );
    }

    #[test]
    fn rejects_wrong_key() {
        let key1 = SigningKey::from_seed([1u8; 32]);
        let key2 = SigningKey::from_seed([2u8; 32]);
        let sig = key1.sign(b"msg");
        assert!(key2.verifying_key().verify(b"msg", &sig).is_err());
    }

    #[test]
    fn rejects_tampered_signature() {
        let key = SigningKey::from_seed([3u8; 32]);
        let sig = key.sign(b"msg");
        let mut bytes = sig.to_bytes();
        bytes[0] ^= 1;
        let bad = Signature::from_bytes(&bytes);
        assert!(key.verifying_key().verify(b"msg", &bad).is_err());
    }

    #[test]
    fn rejects_non_canonical_s() {
        let key = SigningKey::from_seed([4u8; 32]);
        let sig = key.sign(b"msg");
        let mut bytes = sig.to_bytes();
        // Set S to l (non-canonical but > l test: all 0xff with top bits).
        for b in bytes[32..].iter_mut() {
            *b = 0xff;
        }
        bytes[63] = 0x1f;
        let bad = Signature::from_bytes(&bytes);
        assert_eq!(
            key.verifying_key().verify(b"msg", &bad),
            Err(SignatureError::NonCanonicalScalar)
        );
    }

    #[test]
    fn signature_roundtrip() {
        let key = SigningKey::from_seed([5u8; 32]);
        let sig = key.sign(b"roundtrip");
        let sig2 = Signature::from_bytes(&sig.to_bytes());
        assert_eq!(sig, sig2);
    }

    #[test]
    fn deterministic_signing() {
        let key = SigningKey::from_seed([6u8; 32]);
        assert_eq!(key.sign(b"x"), key.sign(b"x"));
        assert_ne!(key.sign(b"x"), key.sign(b"y"));
    }

    #[test]
    fn generate_produces_valid_keys() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for _ in 0..4 {
            let key = SigningKey::generate(&mut rng);
            let sig = key.sign(b"generated");
            key.verifying_key().verify(b"generated", &sig).unwrap();
        }
    }

    #[test]
    fn public_key_from_bytes_validates() {
        let key = SigningKey::from_seed([7u8; 32]);
        let pk = VerifyingKey::from_bytes(&key.verifying_key().to_bytes()).unwrap();
        assert_eq!(pk, key.verifying_key());
        // An all-0xff encoding has y ≥ p and must be rejected.
        let bad = [0xffu8; 32];
        assert!(VerifyingKey::from_bytes(&bad).is_err());
    }
}
