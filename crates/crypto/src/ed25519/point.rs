//! Edwards-curve point arithmetic for Ed25519.
//!
//! Points are kept in projective coordinates (X : Y : Z) on the twisted
//! Edwards curve −x² + y² = 1 + d·x²·y². Because a = −1 is a square and d is
//! a non-square modulo p, the unified addition law used here is *complete*:
//! the same formula handles addition, doubling and the identity, which
//! removes all special-case branches (and the bugs that come with them).

use super::field::FieldElement;
use super::scalar::Scalar;

/// Affine x-coordinate of the standard base point B.
const BASE_X: [u64; 4] = [
    0xc9562d608f25d51a,
    0x692cc7609525a7b2,
    0xc0a4e231fdd6dc5c,
    0x216936d3cd6e53fe,
];

/// Affine y-coordinate of the standard base point B (= 4/5 mod p).
const BASE_Y: [u64; 4] = [
    0x6666666666666658,
    0x6666666666666666,
    0x6666666666666666,
    0x6666666666666666,
];

/// A point on the Ed25519 curve, in projective coordinates.
#[derive(Clone, Copy, Debug)]
pub struct EdwardsPoint {
    x: FieldElement,
    y: FieldElement,
    z: FieldElement,
}

impl PartialEq for EdwardsPoint {
    fn eq(&self, other: &Self) -> bool {
        // (X1/Z1, Y1/Z1) == (X2/Z2, Y2/Z2) without divisions.
        self.x.mul(&other.z) == other.x.mul(&self.z) && self.y.mul(&other.z) == other.y.mul(&self.z)
    }
}

impl Eq for EdwardsPoint {}

impl EdwardsPoint {
    /// The identity element (0, 1).
    pub fn identity() -> Self {
        EdwardsPoint {
            x: FieldElement::ZERO,
            y: FieldElement::ONE,
            z: FieldElement::ONE,
        }
    }

    /// The standard base point B.
    pub fn basepoint() -> Self {
        EdwardsPoint {
            x: FieldElement::from_limbs_unchecked(BASE_X),
            y: FieldElement::from_limbs_unchecked(BASE_Y),
            z: FieldElement::ONE,
        }
    }

    /// Whether this is the identity element.
    pub fn is_identity(&self) -> bool {
        self.x.is_zero() && self.y == self.z
    }

    /// Point negation.
    pub fn neg(&self) -> Self {
        EdwardsPoint {
            x: self.x.neg(),
            y: self.y,
            z: self.z,
        }
    }

    /// Complete unified point addition (add-2008-bbjlp with a = −1).
    pub fn add(&self, other: &Self) -> Self {
        let a = self.z.mul(&other.z);
        let b = a.square();
        let c = self.x.mul(&other.x);
        let d = self.y.mul(&other.y);
        let e = FieldElement::d().mul(&c).mul(&d);
        let f = b.sub(&e);
        let g = b.add(&e);
        let x1py1 = self.x.add(&self.y);
        let x2py2 = other.x.add(&other.y);
        let x3 = a.mul(&f).mul(&x1py1.mul(&x2py2).sub(&c).sub(&d));
        // For a = −1: Y3 = A·G·(D − a·C) = A·G·(D + C).
        let y3 = a.mul(&g).mul(&d.add(&c));
        let z3 = f.mul(&g);
        EdwardsPoint {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Point doubling via the unified addition law.
    pub fn double(&self) -> Self {
        self.add(self)
    }

    /// Scalar multiplication \[k\]P by left-to-right double-and-add.
    ///
    /// Not constant time; see the crate-level scope note.
    pub fn scalar_mul(&self, k: &Scalar) -> Self {
        let limbs = k.limbs();
        let mut acc = EdwardsPoint::identity();
        for i in (0..256).rev() {
            acc = acc.double();
            if (limbs[i / 64] >> (i % 64)) & 1 == 1 {
                acc = acc.add(self);
            }
        }
        acc
    }

    /// \[k\]B for the standard base point.
    pub fn basepoint_mul(k: &Scalar) -> Self {
        EdwardsPoint::basepoint().scalar_mul(k)
    }

    /// Compresses to the 32-byte RFC 8032 wire format: the y-coordinate with
    /// the sign of x in the top bit.
    pub fn compress(&self) -> [u8; 32] {
        let zinv = self.z.invert();
        let x = self.x.mul(&zinv);
        let y = self.y.mul(&zinv);
        let mut bytes = y.to_bytes();
        bytes[31] |= (x.is_odd() as u8) << 7;
        bytes
    }

    /// Decompresses an RFC 8032 encoded point.
    ///
    /// Returns `None` for non-canonical y, off-curve values, or the invalid
    /// encoding x = 0 with sign bit 1.
    pub fn decompress(bytes: &[u8; 32]) -> Option<Self> {
        let sign = bytes[31] >> 7;
        let mut y_bytes = *bytes;
        y_bytes[31] &= 0x7f;
        let y = FieldElement::from_bytes_checked(&y_bytes)?;

        // x² = (y² − 1) / (d·y² + 1).
        let yy = y.square();
        let u = yy.sub(&FieldElement::ONE);
        let v = FieldElement::d().mul(&yy).add(&FieldElement::ONE);
        let (is_square, mut x) = FieldElement::sqrt_ratio(&u, &v);
        if !is_square {
            return None;
        }
        if x.is_zero() && sign == 1 {
            return None;
        }
        if x.is_odd() != (sign == 1) {
            x = x.neg();
        }
        Some(EdwardsPoint {
            x,
            y,
            z: FieldElement::ONE,
        })
    }

    /// Verifies the curve equation −x² + y² = 1 + d·x²·y² (affine check).
    pub fn is_on_curve(&self) -> bool {
        let zinv = self.z.invert();
        let x = self.x.mul(&zinv);
        let y = self.y.mul(&zinv);
        let xx = x.square();
        let yy = y.square();
        let lhs = yy.sub(&xx);
        let rhs = FieldElement::ONE.add(&FieldElement::d().mul(&xx).mul(&yy));
        lhs == rhs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basepoint_on_curve() {
        assert!(EdwardsPoint::basepoint().is_on_curve());
    }

    #[test]
    fn identity_laws() {
        let b = EdwardsPoint::basepoint();
        let id = EdwardsPoint::identity();
        assert_eq!(b.add(&id), b);
        assert_eq!(id.add(&b), b);
        assert!(id.is_identity());
    }

    #[test]
    fn addition_is_commutative_and_associative() {
        let b = EdwardsPoint::basepoint();
        let b2 = b.double();
        let b3a = b2.add(&b);
        let b3b = b.add(&b2);
        assert_eq!(b3a, b3b);
        let lhs = b.add(&b2).add(&b3a);
        let rhs = b.add(&b2.add(&b3a));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn neg_cancels() {
        let b = EdwardsPoint::basepoint();
        assert!(b.add(&b.neg()).is_identity());
    }

    #[test]
    fn scalar_mul_small_values() {
        let b = EdwardsPoint::basepoint();
        let two = Scalar::from_bytes_mod_order(&{
            let mut s = [0u8; 32];
            s[0] = 2;
            s
        });
        assert_eq!(b.scalar_mul(&two), b.double());

        let five = Scalar::from_bytes_mod_order(&{
            let mut s = [0u8; 32];
            s[0] = 5;
            s
        });
        let by_add = b.double().double().add(&b);
        assert_eq!(b.scalar_mul(&five), by_add);
    }

    #[test]
    fn order_annihilates_basepoint() {
        // [l]B = identity: l ≡ 0 mod l, and scalar_mul uses reduced scalars,
        // so instead check [l−1]B + B = identity via the negation identity.
        let mut l_minus_1 = super::super::scalar::L;
        l_minus_1[0] -= 1;
        let mut bytes = [0u8; 32];
        for i in 0..4 {
            bytes[i * 8..i * 8 + 8].copy_from_slice(&l_minus_1[i].to_le_bytes());
        }
        let s = Scalar::from_canonical_bytes(&bytes).unwrap();
        let p = EdwardsPoint::basepoint_mul(&s);
        assert!(p.add(&EdwardsPoint::basepoint()).is_identity());
        // [l−1]B should equal −B.
        assert_eq!(p, EdwardsPoint::basepoint().neg());
    }

    #[test]
    fn compress_decompress_roundtrip() {
        let b = EdwardsPoint::basepoint();
        let mut p = b;
        for i in 0..16 {
            let c = p.compress();
            let d = EdwardsPoint::decompress(&c).expect("valid point");
            assert_eq!(d, p, "iteration {i}");
            assert!(d.is_on_curve());
            p = p.add(&b);
        }
    }

    #[test]
    fn basepoint_compressed_encoding() {
        // RFC 8032: B compresses to 0x58 followed by 31 bytes of 0x66.
        let c = EdwardsPoint::basepoint().compress();
        assert_eq!(c[0], 0x58);
        assert!(c[1..].iter().all(|&b| b == 0x66));
    }

    #[test]
    fn decompress_rejects_garbage() {
        // y = p (non-canonical).
        let mut bad = [0xffu8; 32];
        bad[31] = 0x7f;
        assert!(EdwardsPoint::decompress(&bad).is_none());
    }

    #[test]
    fn decompress_rejects_off_curve() {
        // Find some y with no valid x: y = 2 gives u/v non-square for this
        // curve (checked empirically and stable because the curve is fixed).
        let mut bytes = [0u8; 32];
        bytes[0] = 2;
        if let Some(p) = EdwardsPoint::decompress(&bytes) {
            // If it decompresses, it must be on the curve.
            assert!(p.is_on_curve());
        }
    }
}
