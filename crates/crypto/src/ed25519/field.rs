//! Arithmetic in GF(2^255 − 19), the Ed25519 base field.
//!
//! Elements are stored as four little-endian 64-bit limbs, kept fully
//! reduced (< p) after every operation. Multiplication produces a 512-bit
//! intermediate that is folded with the identity 2^255 ≡ 19 (mod p).

/// The field prime p = 2^255 − 19, as little-endian limbs.
pub const P: [u64; 4] = [
    0xffffffffffffffed,
    0xffffffffffffffff,
    0xffffffffffffffff,
    0x7fffffffffffffff,
];

/// The curve constant d = −121665/121666 (mod p).
pub const D: [u64; 4] = [
    0x75eb4dca135978a3,
    0x00700a4d4141d8ab,
    0x8cc740797779e898,
    0x52036cee2b6ffe73,
];

/// sqrt(−1) = 2^((p−1)/4) (mod p), used during point decompression.
pub const SQRT_M1: [u64; 4] = [
    0xc4ee1b274a0ea0b0,
    0x2f431806ad2fe478,
    0x2b4d00993dfbd7a7,
    0x2b8324804fc1df0b,
];

/// Exponent p − 2, used for inversion via Fermat's little theorem.
const P_MINUS_2: [u64; 4] = [
    0xffffffffffffffeb,
    0xffffffffffffffff,
    0xffffffffffffffff,
    0x7fffffffffffffff,
];

/// Exponent (p − 5)/8 = 2^252 − 3, used for the square-root candidate.
const P58: [u64; 4] = [
    0xfffffffffffffffd,
    0xffffffffffffffff,
    0xffffffffffffffff,
    0x0fffffffffffffff,
];

/// Compares two little-endian 4-limb values, `true` if `a >= b`.
fn geq(a: &[u64; 4], b: &[u64; 4]) -> bool {
    for i in (0..4).rev() {
        if a[i] != b[i] {
            return a[i] > b[i];
        }
    }
    true
}

/// Subtracts `b` from `a` in place; caller guarantees `a >= b`.
fn sub_in_place(a: &mut [u64; 4], b: &[u64; 4]) {
    let mut borrow = 0u64;
    for i in 0..4 {
        let (d1, b1) = a[i].overflowing_sub(b[i]);
        let (d2, b2) = d1.overflowing_sub(borrow);
        a[i] = d2;
        borrow = (b1 as u64) + (b2 as u64);
    }
    debug_assert_eq!(borrow, 0, "subtraction underflow");
}

/// Schoolbook 4×4-limb multiplication into an 8-limb product.
pub(crate) fn mul_wide(a: &[u64; 4], b: &[u64; 4]) -> [u64; 8] {
    let mut out = [0u64; 8];
    for i in 0..4 {
        let mut carry: u128 = 0;
        for j in 0..4 {
            let cur = out[i + j] as u128 + (a[i] as u128) * (b[j] as u128) + carry;
            out[i + j] = cur as u64;
            carry = cur >> 64;
        }
        out[i + 4] = carry as u64;
    }
    out
}

/// One fold of the reduction: splits at bit 255 and adds 19 × the high part.
fn fold(x: &[u64; 8]) -> [u64; 8] {
    let lo = [x[0], x[1], x[2], x[3] & 0x7fffffffffffffff];
    let mut hi = [0u64; 5];
    for i in 0..5 {
        let low_bit = x[3 + i] >> 63;
        let high_bits = if 4 + i < 8 { x[4 + i] << 1 } else { 0 };
        hi[i] = low_bit | high_bits;
    }
    let mut out = [0u64; 8];
    let mut carry: u128 = 0;
    for i in 0..5 {
        let lo_limb = if i < 4 { lo[i] as u128 } else { 0 };
        let cur = (hi[i] as u128) * 19 + lo_limb + carry;
        out[i] = cur as u64;
        carry = cur >> 64;
    }
    out[5] = carry as u64;
    out
}

/// Reduces a 512-bit value modulo p.
fn reduce_wide(x: &[u64; 8]) -> [u64; 4] {
    // Three folds bring any 512-bit value below 2^255; see the bound
    // analysis in the module docs of the fold sizes.
    let x = fold(&fold(&fold(x)));
    debug_assert!(x[4..].iter().all(|&l| l == 0), "fold did not converge");
    let mut r = [x[0], x[1], x[2], x[3]];
    if geq(&r, &P) {
        sub_in_place(&mut r, &P);
    }
    debug_assert!(!geq(&r, &P));
    r
}

/// An element of GF(2^255 − 19), always fully reduced.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FieldElement(pub(crate) [u64; 4]);

impl FieldElement {
    /// The additive identity.
    pub const ZERO: FieldElement = FieldElement([0, 0, 0, 0]);
    /// The multiplicative identity.
    pub const ONE: FieldElement = FieldElement([1, 0, 0, 0]);

    /// Constructs an element from little-endian limbs known to be < p.
    ///
    /// Only used for vetted curve constants; debug builds assert reduction.
    pub(crate) const fn from_limbs_unchecked(limbs: [u64; 4]) -> Self {
        FieldElement(limbs)
    }

    /// The curve constant d.
    pub fn d() -> Self {
        FieldElement(D)
    }

    /// sqrt(−1) mod p.
    pub fn sqrt_m1() -> Self {
        FieldElement(SQRT_M1)
    }

    /// Decodes 32 little-endian bytes; the top bit is ignored (it carries
    /// the sign of x in compressed points). Returns `None` if the value is
    /// not canonical (≥ p).
    pub fn from_bytes_checked(bytes: &[u8; 32]) -> Option<Self> {
        let mut limbs = [0u64; 4];
        for i in 0..4 {
            limbs[i] = u64::from_le_bytes(bytes[i * 8..i * 8 + 8].try_into().expect("8 bytes"));
        }
        limbs[3] &= 0x7fffffffffffffff;
        if geq(&limbs, &P) {
            return None;
        }
        Some(FieldElement(limbs))
    }

    /// Decodes 32 little-endian bytes, reducing modulo p.
    pub fn from_bytes_reduced(bytes: &[u8; 32]) -> Self {
        let mut limbs = [0u64; 4];
        for i in 0..4 {
            limbs[i] = u64::from_le_bytes(bytes[i * 8..i * 8 + 8].try_into().expect("8 bytes"));
        }
        let wide = [limbs[0], limbs[1], limbs[2], limbs[3], 0, 0, 0, 0];
        FieldElement(reduce_wide(&wide))
    }

    /// Encodes the element as 32 little-endian bytes.
    pub fn to_bytes(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..4 {
            out[i * 8..i * 8 + 8].copy_from_slice(&self.0[i].to_le_bytes());
        }
        out
    }

    /// Field addition.
    pub fn add(&self, rhs: &Self) -> Self {
        let mut r = [0u64; 4];
        let mut carry = 0u64;
        for (i, limb) in r.iter_mut().enumerate() {
            let (s1, c1) = self.0[i].overflowing_add(rhs.0[i]);
            let (s2, c2) = s1.overflowing_add(carry);
            *limb = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        // Both inputs are < p < 2^255, so the sum is < 2^256 and fits.
        debug_assert_eq!(carry, 0);
        if geq(&r, &P) {
            sub_in_place(&mut r, &P);
        }
        FieldElement(r)
    }

    /// Field subtraction.
    pub fn sub(&self, rhs: &Self) -> Self {
        // a − b = a + (p − b); p − b never underflows since b < p.
        let mut p_minus_b = P;
        sub_in_place(&mut p_minus_b, &rhs.0);
        self.add(&FieldElement(p_minus_b))
    }

    /// Field negation.
    pub fn neg(&self) -> Self {
        FieldElement::ZERO.sub(self)
    }

    /// Field multiplication.
    pub fn mul(&self, rhs: &Self) -> Self {
        FieldElement(reduce_wide(&mul_wide(&self.0, &rhs.0)))
    }

    /// Field squaring.
    pub fn square(&self) -> Self {
        self.mul(self)
    }

    /// Multiplies by a small constant.
    pub fn mul_small(&self, k: u64) -> Self {
        self.mul(&FieldElement([k, 0, 0, 0]))
    }

    /// Raises the element to the given 256-bit exponent (square-and-multiply).
    pub fn pow(&self, exponent: &[u64; 4]) -> Self {
        let mut acc = FieldElement::ONE;
        for i in (0..256).rev() {
            acc = acc.square();
            if (exponent[i / 64] >> (i % 64)) & 1 == 1 {
                acc = acc.mul(self);
            }
        }
        acc
    }

    /// Multiplicative inverse; `0` maps to `0`.
    pub fn invert(&self) -> Self {
        self.pow(&P_MINUS_2)
    }

    /// Whether the element is zero.
    pub fn is_zero(&self) -> bool {
        self.0 == [0, 0, 0, 0]
    }

    /// The low bit of the canonical encoding (the "sign" of x in RFC 8032).
    pub fn is_odd(&self) -> bool {
        self.0[0] & 1 == 1
    }

    /// Computes r = sqrt(u/v) if it exists.
    ///
    /// Returns `(true, r)` when u/v is a square (r chosen with unspecified
    /// sign), `(true, 0)` when u = 0, and `(false, _)` when u/v is not a
    /// square. This is the standard RFC 8032 decompression subroutine.
    pub fn sqrt_ratio(u: &Self, v: &Self) -> (bool, Self) {
        let v3 = v.square().mul(v);
        let v7 = v3.square().mul(v);
        let mut r = u.mul(&v3).mul(&u.mul(&v7).pow(&P58));
        let check = v.mul(&r.square());
        if check == *u {
            return (true, r);
        }
        if check == u.neg() {
            r = r.mul(&FieldElement::sqrt_m1());
            return (true, r);
        }
        (false, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fe(n: u64) -> FieldElement {
        FieldElement([n, 0, 0, 0])
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = fe(12345);
        let b = fe(67890);
        assert_eq!(a.add(&b).sub(&b), a);
    }

    #[test]
    fn sub_wraps() {
        // 0 − 1 = p − 1.
        let got = FieldElement::ZERO.sub(&FieldElement::ONE);
        let mut expect = P;
        expect[0] -= 1;
        assert_eq!(got.0, expect);
    }

    #[test]
    fn mul_matches_small_values() {
        assert_eq!(fe(7).mul(&fe(6)), fe(42));
    }

    #[test]
    fn p_reduces_to_zero() {
        let mut bytes = [0u8; 32];
        for i in 0..4 {
            bytes[i * 8..i * 8 + 8].copy_from_slice(&P[i].to_le_bytes());
        }
        assert!(FieldElement::from_bytes_checked(&bytes).is_none());
        assert_eq!(FieldElement::from_bytes_reduced(&bytes), FieldElement::ZERO);
    }

    #[test]
    fn nineteen_identity() {
        // 2^255 ≡ 19: check (2^255 mod p) via repeated doubling.
        let mut x = FieldElement::ONE;
        for _ in 0..255 {
            x = x.add(&x);
        }
        assert_eq!(x, fe(19));
    }

    #[test]
    fn inversion() {
        let a = fe(987654321);
        assert_eq!(a.mul(&a.invert()), FieldElement::ONE);
        assert_eq!(FieldElement::ZERO.invert(), FieldElement::ZERO);
    }

    #[test]
    fn sqrt_m1_squares_to_minus_one() {
        let i = FieldElement::sqrt_m1();
        assert_eq!(i.square(), FieldElement::ONE.neg());
    }

    #[test]
    fn sqrt_ratio_square() {
        let u = fe(4);
        let v = fe(1);
        let (ok, r) = FieldElement::sqrt_ratio(&u, &v);
        assert!(ok);
        assert_eq!(r.square(), u);
    }

    #[test]
    fn sqrt_ratio_nonsquare() {
        // 2 is a non-square mod p (p ≡ 5 mod 8 ⇒ 2 is a QNR).
        let (ok, _) = FieldElement::sqrt_ratio(&fe(2), &FieldElement::ONE);
        assert!(!ok);
    }

    #[test]
    fn bytes_roundtrip() {
        let a = fe(0xdead_beef_cafe_f00d);
        let b = FieldElement::from_bytes_checked(&a.to_bytes()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn d_constant_matches_definition() {
        // d = −121665/121666 mod p.
        let d = fe(121665).neg().mul(&fe(121666).invert());
        assert_eq!(d, FieldElement::d());
    }
}
