//! Arithmetic modulo the Ed25519 group order
//! l = 2^252 + 27742317777372353535851937790883648493.

use super::field::mul_wide;

/// The group order l, as little-endian limbs.
pub const L: [u64; 4] = [
    0x5812631a5cf5d3ed,
    0x14def9dea2f79cd6,
    0x0000000000000000,
    0x1000000000000000,
];

fn geq(a: &[u64; 4], b: &[u64; 4]) -> bool {
    for i in (0..4).rev() {
        if a[i] != b[i] {
            return a[i] > b[i];
        }
    }
    true
}

fn sub_in_place(a: &mut [u64; 4], b: &[u64; 4]) {
    let mut borrow = 0u64;
    for i in 0..4 {
        let (d1, b1) = a[i].overflowing_sub(b[i]);
        let (d2, b2) = d1.overflowing_sub(borrow);
        a[i] = d2;
        borrow = (b1 as u64) + (b2 as u64);
    }
    debug_assert_eq!(borrow, 0, "subtraction underflow");
}

/// Reduces a 512-bit little-endian value modulo l by binary long division.
///
/// l is only used during signing/verification (a handful of reductions per
/// operation), so the simple O(bits) algorithm is fast enough and trivially
/// correct.
fn reduce_wide(x: &[u64; 8]) -> [u64; 4] {
    let mut r = [0u64; 4];
    for bit in (0..512).rev() {
        // r = 2r + bit(x, bit); r stays < 2l < 2^254, so no overflow.
        let mut carry = (x[bit / 64] >> (bit % 64)) & 1;
        for limb in r.iter_mut() {
            let top = *limb >> 63;
            *limb = (*limb << 1) | carry;
            carry = top;
        }
        debug_assert_eq!(carry, 0);
        if geq(&r, &L) {
            sub_in_place(&mut r, &L);
        }
    }
    r
}

/// An integer modulo the Ed25519 group order, always fully reduced.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Scalar(pub(crate) [u64; 4]);

impl Scalar {
    /// The scalar 0.
    pub const ZERO: Scalar = Scalar([0, 0, 0, 0]);
    /// The scalar 1.
    pub const ONE: Scalar = Scalar([1, 0, 0, 0]);

    /// Interprets 32 little-endian bytes, reducing modulo l.
    pub fn from_bytes_mod_order(bytes: &[u8; 32]) -> Self {
        let mut wide = [0u8; 64];
        wide[..32].copy_from_slice(bytes);
        Self::from_bytes_mod_order_wide(&wide)
    }

    /// Interprets 64 little-endian bytes (e.g. a SHA-512 output), reducing
    /// modulo l.
    pub fn from_bytes_mod_order_wide(bytes: &[u8; 64]) -> Self {
        let mut limbs = [0u64; 8];
        for i in 0..8 {
            limbs[i] = u64::from_le_bytes(bytes[i * 8..i * 8 + 8].try_into().expect("8 bytes"));
        }
        Scalar(reduce_wide(&limbs))
    }

    /// Decodes a canonical scalar (< l), as required for strict signature
    /// verification. Returns `None` for non-canonical encodings.
    pub fn from_canonical_bytes(bytes: &[u8; 32]) -> Option<Self> {
        let mut limbs = [0u64; 4];
        for i in 0..4 {
            limbs[i] = u64::from_le_bytes(bytes[i * 8..i * 8 + 8].try_into().expect("8 bytes"));
        }
        if geq(&limbs, &L) {
            return None;
        }
        Some(Scalar(limbs))
    }

    /// Encodes the scalar as 32 little-endian bytes.
    pub fn to_bytes(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..4 {
            out[i * 8..i * 8 + 8].copy_from_slice(&self.0[i].to_le_bytes());
        }
        out
    }

    /// Addition modulo l.
    pub fn add(&self, rhs: &Self) -> Self {
        let mut r = [0u64; 4];
        let mut carry = 0u64;
        for (i, limb) in r.iter_mut().enumerate() {
            let (s1, c1) = self.0[i].overflowing_add(rhs.0[i]);
            let (s2, c2) = s1.overflowing_add(carry);
            *limb = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        // Inputs are < l < 2^253, so the sum fits in 4 limbs.
        debug_assert_eq!(carry, 0);
        if geq(&r, &L) {
            sub_in_place(&mut r, &L);
        }
        Scalar(r)
    }

    /// Multiplication modulo l.
    pub fn mul(&self, rhs: &Self) -> Self {
        Scalar(reduce_wide(&mul_wide(&self.0, &rhs.0)))
    }

    /// Returns the raw limbs, used to drive scalar multiplication bit scans.
    pub(crate) fn limbs(&self) -> &[u64; 4] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sc(n: u64) -> Scalar {
        Scalar([n, 0, 0, 0])
    }

    #[test]
    fn l_reduces_to_zero() {
        let mut bytes = [0u8; 32];
        for i in 0..4 {
            bytes[i * 8..i * 8 + 8].copy_from_slice(&L[i].to_le_bytes());
        }
        assert_eq!(Scalar::from_bytes_mod_order(&bytes), Scalar::ZERO);
        assert!(Scalar::from_canonical_bytes(&bytes).is_none());
    }

    #[test]
    fn l_minus_one_is_canonical() {
        let mut limbs = L;
        limbs[0] -= 1;
        let mut bytes = [0u8; 32];
        for i in 0..4 {
            bytes[i * 8..i * 8 + 8].copy_from_slice(&limbs[i].to_le_bytes());
        }
        let s = Scalar::from_canonical_bytes(&bytes).expect("canonical");
        // (l − 1) + 1 = 0 (mod l).
        assert_eq!(s.add(&Scalar::ONE), Scalar::ZERO);
    }

    #[test]
    fn small_arithmetic() {
        assert_eq!(sc(6).mul(&sc(7)), sc(42));
        assert_eq!(sc(40).add(&sc(2)), sc(42));
    }

    #[test]
    fn wide_reduction_matches_composed() {
        // (2^256) mod l computed two ways.
        let mut wide = [0u8; 64];
        wide[32] = 1; // 2^256
        let direct = Scalar::from_bytes_mod_order_wide(&wide);

        // 2^256 = (2^128)^2.
        let mut b = [0u8; 32];
        b[16] = 1; // 2^128
        let half = Scalar::from_bytes_mod_order(&b);
        assert_eq!(half.mul(&half), direct);
    }

    #[test]
    fn bytes_roundtrip() {
        let s = Scalar::from_bytes_mod_order(&[0x42; 32]);
        assert_eq!(Scalar::from_canonical_bytes(&s.to_bytes()), Some(s));
    }
}
