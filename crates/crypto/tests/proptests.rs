//! Property-based tests of the cryptographic primitives.

use partialtor_crypto::ed25519::point::EdwardsPoint;
use partialtor_crypto::ed25519::scalar::Scalar;
use partialtor_crypto::{hex, sha256, sha512, Digest32, Signature, SigningKey};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Signing then verifying succeeds for arbitrary seeds and messages.
    #[test]
    fn sign_verify_roundtrip(seed in any::<[u8; 32]>(), msg in proptest::collection::vec(any::<u8>(), 0..512)) {
        let key = SigningKey::from_seed(seed);
        let sig = key.sign(&msg);
        prop_assert!(key.verifying_key().verify(&msg, &sig).is_ok());
    }

    /// Any single-bit flip in the message invalidates the signature.
    #[test]
    fn tampered_message_rejected(
        seed in any::<[u8; 32]>(),
        msg in proptest::collection::vec(any::<u8>(), 1..256),
        flip_byte in any::<proptest::sample::Index>(),
        flip_bit in 0u8..8,
    ) {
        let key = SigningKey::from_seed(seed);
        let sig = key.sign(&msg);
        let mut tampered = msg.clone();
        let index = flip_byte.index(tampered.len());
        tampered[index] ^= 1 << flip_bit;
        prop_assert!(key.verifying_key().verify(&tampered, &sig).is_err());
    }

    /// Signature byte serialization round-trips.
    #[test]
    fn signature_bytes_roundtrip(seed in any::<[u8; 32]>(), msg in proptest::collection::vec(any::<u8>(), 0..64)) {
        let key = SigningKey::from_seed(seed);
        let sig = key.sign(&msg);
        prop_assert_eq!(Signature::from_bytes(&sig.to_bytes()), sig);
    }

    /// SHA-256 streaming equals one-shot for arbitrary chunk boundaries.
    #[test]
    fn sha256_chunking_invariant(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        cuts in proptest::collection::vec(any::<proptest::sample::Index>(), 0..6),
    ) {
        let mut boundaries: Vec<usize> = cuts.iter().map(|c| c.index(data.len() + 1)).collect();
        boundaries.push(0);
        boundaries.push(data.len());
        boundaries.sort_unstable();
        let mut hasher = sha256::Hasher::new();
        for pair in boundaries.windows(2) {
            hasher.update(&data[pair[0]..pair[1]]);
        }
        prop_assert_eq!(hasher.finalize(), sha256::digest(&data));
    }

    /// SHA-512 streaming equals one-shot likewise.
    #[test]
    fn sha512_chunking_invariant(
        data in proptest::collection::vec(any::<u8>(), 0..1024),
        cut in any::<proptest::sample::Index>(),
    ) {
        let split = cut.index(data.len() + 1);
        let mut hasher = sha512::Hasher::new();
        hasher.update(&data[..split]);
        hasher.update(&data[split..]);
        prop_assert_eq!(hasher.finalize(), sha512::digest(&data));
    }

    /// Hex encode/decode round-trips for arbitrary byte strings.
    #[test]
    fn hex_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..128)) {
        prop_assert_eq!(hex::decode(&hex::encode(&data)), Some(data));
    }

    /// `Digest32` hex parsing round-trips.
    #[test]
    fn digest_hex_roundtrip(bytes in any::<[u8; 32]>()) {
        let d = Digest32::from_bytes(bytes);
        prop_assert_eq!(Digest32::from_hex(&d.to_hex()), Some(d));
    }

    /// Scalar addition is commutative and multiplication distributes.
    #[test]
    fn scalar_ring_laws(a in any::<[u8; 32]>(), b in any::<[u8; 32]>(), c in any::<[u8; 32]>()) {
        let (a, b, c) = (
            Scalar::from_bytes_mod_order(&a),
            Scalar::from_bytes_mod_order(&b),
            Scalar::from_bytes_mod_order(&c),
        );
        prop_assert_eq!(a.add(&b), b.add(&a));
        prop_assert_eq!(a.mul(&b), b.mul(&a));
        // a·(b + c) = a·b + a·c.
        prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }
}

proptest! {
    // Point operations are expensive; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Scalar multiplication is a homomorphism: [a]B + [b]B = [a+b]B.
    #[test]
    fn scalar_mul_homomorphism(a in any::<[u8; 32]>(), b in any::<[u8; 32]>()) {
        let a = Scalar::from_bytes_mod_order(&a);
        let b = Scalar::from_bytes_mod_order(&b);
        let lhs = EdwardsPoint::basepoint_mul(&a).add(&EdwardsPoint::basepoint_mul(&b));
        let rhs = EdwardsPoint::basepoint_mul(&a.add(&b));
        prop_assert_eq!(lhs, rhs);
    }

    /// Compression round-trips for arbitrary multiples of the base point.
    #[test]
    fn point_compression_roundtrip(k in any::<[u8; 32]>()) {
        let k = Scalar::from_bytes_mod_order(&k);
        let p = EdwardsPoint::basepoint_mul(&k);
        let decompressed = EdwardsPoint::decompress(&p.compress()).expect("valid point");
        prop_assert_eq!(decompressed, p);
        prop_assert!(decompressed.is_on_curve());
    }
}
