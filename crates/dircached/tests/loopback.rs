//! End-to-end loopback tests: a real daemon on an ephemeral port, real
//! sockets, the real load generator. These are the in-process versions
//! of the CI smoke — deterministic document set, short replay, and
//! assertions on the properties the ISSUE pins: non-zero diff hit
//! rate, a finite positive budget ratio, graceful 503 shedding at the
//! connection limit, and a daemon that survives malformed input.

use partialtor_dircached::loadgen::{self, fetch_history};
use partialtor_dircached::{
    budget_check, consensus_series, synthesize_mix, Daemon, DaemonConfig, DocRequest, DocSetConfig,
    LoadConfig, ServingStore,
};
use partialtor_obs::{Registry, Tracer};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn served_store() -> Arc<ServingStore> {
    let docs = consensus_series(&DocSetConfig {
        relays: 120,
        history: 4,
        churn_per_hour: 8,
        ..DocSetConfig::default()
    });
    let store = Arc::new(ServingStore::new(3));
    for doc in docs {
        store.publish(doc);
    }
    store
}

fn start_daemon(config: DaemonConfig) -> (Daemon, Arc<ServingStore>) {
    let store = served_store();
    let daemon = Daemon::start(config, store.clone()).expect("bind ephemeral port");
    (daemon, store)
}

#[test]
fn replay_hits_diffs_and_yields_a_finite_budget_ratio() {
    let registry = Registry::new();
    let tracer = Tracer::enabled(4_096);
    let (daemon, _store) = start_daemon(DaemonConfig {
        registry: registry.clone(),
        tracer: tracer.clone(),
        ..DaemonConfig::default()
    });

    let config = LoadConfig {
        addr: daemon.local_addr().to_string(),
        duration: Duration::from_secs(1),
        rate: 300.0,
        connections: 4,
        ..LoadConfig::default()
    };
    let mix = synthesize_mix(config.seed);
    let report = loadgen::run(&config, &mix).expect("replay runs");

    assert!(report.completed > 0, "requests must complete: {report:?}");
    assert_eq!(report.failed, 0, "loopback must not drop requests");
    assert!(
        report.diff_hits > 0,
        "refreshes against retained bases must be diff-served: {report:?}"
    );
    assert!(report.latency.count() > 0);
    assert!(report.latency.p50().is_some());

    let check = budget_check(&report);
    assert!(
        check.ratio.is_finite() && check.ratio > 0.0,
        "budget ratio must be finite and positive: {check:?}"
    );

    // The daemon's own telemetry saw the same traffic.
    assert!(registry.counter("dircached.requests") >= report.sent);
    assert!(registry.counter("dircached.served.diff") >= report.diff_hits);
    assert!(registry.histogram("dircached.request_secs").count() > 0);
    assert!(
        tracer.drain().iter().any(|e| e.kind() == "http_request"),
        "request trace events must be emitted"
    );
}

#[test]
fn daemon_sheds_excess_connections_with_503() {
    let registry = Registry::new();
    let (daemon, _store) = start_daemon(DaemonConfig {
        workers: 1,
        max_pending: 1,
        registry: registry.clone(),
        ..DaemonConfig::default()
    });
    let addr = daemon.local_addr();

    // Stall the single worker with a connection that sends nothing,
    // and fill the one queue slot with another.
    let stall = TcpStream::connect(addr).expect("stall connect");
    let parked = TcpStream::connect(addr).expect("parked connect");
    std::thread::sleep(Duration::from_millis(100));

    // Subsequent connections must be answered 503 immediately.
    let mut shed = 0;
    for _ in 0..5 {
        let mut stream = TcpStream::connect(addr).expect("shed connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        let mut response = String::new();
        if stream.read_to_string(&mut response).is_ok() && response.contains("503") {
            assert!(response.contains("X-Served: shed"), "{response}");
            shed += 1;
        }
    }
    assert!(shed > 0, "full queue must shed with 503");
    assert!(registry.counter("dircached.shed") >= shed);
    drop(stall);
    drop(parked);
}

#[test]
fn malformed_input_gets_4xx_and_daemon_survives() {
    let (daemon, _store) = start_daemon(DaemonConfig::default());
    let addr = daemon.local_addr();

    for (bytes, expect) in [
        (b"POST /tor/status HTTP/1.0\r\n\r\n".to_vec(), "400"),
        (b"GET /bogus HTTP/1.0\r\n\r\n".to_vec(), "404"),
        (vec![0xFFu8; 64_000], "414"),
        (b"\r\n\r\n".to_vec(), "400"),
    ] {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        // The daemon may answer (and close) before a huge write finishes.
        let _ = stream.write_all(&bytes);
        let mut response = String::new();
        let _ = stream.read_to_string(&mut response);
        assert!(
            response.contains(expect),
            "expected {expect} for {} bytes, got {response:?}",
            bytes.len()
        );
    }

    // After all that abuse, a well-formed request still works.
    let mut stream = TcpStream::connect(addr).expect("connect after abuse");
    stream
        .set_read_timeout(Some(Duration::from_secs(2)))
        .unwrap();
    stream
        .write_all(DocRequest::Status.encode().as_bytes())
        .expect("write");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    assert!(response.starts_with("HTTP/1.0 200"), "{response}");
}

#[test]
fn publish_churn_during_load_never_tears_responses() {
    let (daemon, store) = start_daemon(DaemonConfig::default());
    let addr = daemon.local_addr();

    let churner = {
        let store = store.clone();
        std::thread::spawn(move || {
            let docs = consensus_series(&DocSetConfig {
                seed: 99,
                relays: 120,
                history: 8,
                churn_per_hour: 8,
            });
            for doc in docs {
                store.publish(doc);
                std::thread::sleep(Duration::from_millis(20));
            }
        })
    };

    // Hammer the consensus path while documents churn underneath; every
    // response must be complete (Content-Length honoured) and verified
    // against its declared digest where it names one.
    let timeout = Duration::from_secs(2);
    for round in 0..120 {
        let history = fetch_history(&addr, timeout).expect("digest index");
        let base = history.get(1).copied();
        let request = if round % 2 == 0 {
            DocRequest::Consensus { base }
        } else {
            DocRequest::Descriptors { base }
        };
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_read_timeout(Some(timeout)).unwrap();
        stream
            .write_all(request.encode().as_bytes())
            .expect("write");
        let mut buf = Vec::new();
        stream.read_to_end(&mut buf).expect("read");
        let head = partialtor_dircached::proto::parse_response_head(&buf).expect("head parses");
        assert_eq!(head.status, 200);
        assert_eq!(
            buf.len() - head.body_start,
            head.content_length,
            "body must match Content-Length exactly (round {round}, {})",
            head.served
        );
    }
    churner.join().expect("churner");
}
