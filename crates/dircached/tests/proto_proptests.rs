//! Property-based tests of the wire protocol: whatever bytes arrive,
//! the parser answers with a routed request, `NeedMore`, or a clean
//! 4xx — never a panic — and every request the generator can encode
//! round-trips exactly.

use partialtor_crypto::Digest32;
use partialtor_dircached::proto::{
    parse_request, parse_response_head, DocRequest, Parsed, ResponseHead, MAX_REQUEST_BYTES,
};
use proptest::prelude::*;

fn digest_from(bytes: &[u8]) -> Digest32 {
    partialtor_crypto::sha256::digest(bytes)
}

fn request_from(shape: u8, tag: u8, with_base: bool) -> DocRequest {
    let base = with_base.then(|| digest_from(&[tag]));
    match shape % 6 {
        0 => DocRequest::Consensus { base },
        1 => DocRequest::ConsensusDiff {
            base: digest_from(&[tag]),
        },
        2 => DocRequest::Descriptors { base },
        3 => DocRequest::Digests,
        4 => DocRequest::Status,
        _ => DocRequest::Metrics,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every encodable request parses back to itself, consuming exactly
    /// the bytes the encoder produced — even with trailing garbage in
    /// the buffer.
    #[test]
    fn every_request_round_trips(
        shape in 0u8..6,
        tag in any::<u8>(),
        with_base in any::<bool>(),
        trailing in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let request = request_from(shape, tag, with_base);
        let encoded = request.encode();
        let mut buf = encoded.clone().into_bytes();
        buf.extend_from_slice(&trailing);
        match parse_request(&buf) {
            Parsed::Request(parsed, consumed) => {
                prop_assert_eq!(parsed, request);
                prop_assert_eq!(consumed, encoded.len());
            }
            other => prop_assert!(false, "must parse: {:?}", other),
        }
    }

    /// Arbitrary bytes never panic the parser; they resolve to a
    /// request, a wait-for-more, or a 4xx close.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        match parse_request(&bytes) {
            Parsed::Request(..) | Parsed::NeedMore => {}
            Parsed::Bad(status) => prop_assert!(
                (400..500).contains(&status),
                "malformed input maps to 4xx, got {}",
                status
            ),
        }
    }

    /// Every strict prefix of a valid request is `NeedMore` — truncated
    /// reads are waited out, not misparsed.
    #[test]
    fn truncations_always_need_more(
        shape in 0u8..6,
        tag in any::<u8>(),
        with_base in any::<bool>(),
        fraction in 0.0f64..1.0,
    ) {
        let encoded = request_from(shape, tag, with_base).encode();
        let cut = ((encoded.len() - 1) as f64 * fraction) as usize;
        prop_assert_eq!(parse_request(&encoded.as_bytes()[..cut]), Parsed::NeedMore);
    }

    /// A request line that grows past the cap without terminating is a
    /// clean 414, however it is padded.
    #[test]
    fn oversized_requests_close_with_414(pad in any::<u8>(), extra in 0usize..256) {
        let filler = vec![pad.clamp(b'a', b'z'); MAX_REQUEST_BYTES + extra];
        let mut line = b"GET /".to_vec();
        line.extend_from_slice(&filler);
        prop_assert_eq!(parse_request(&line), Parsed::Bad(414));
    }

    /// Response heads round-trip through the client-side parser for any
    /// status/label/length the daemon can emit.
    #[test]
    fn response_heads_round_trip(
        status_index in 0usize..5,
        served_index in 0usize..8,
        body_len in 0usize..1_000_000,
        with_digest in any::<bool>(),
        tag in any::<u8>(),
    ) {
        let status = [200u16, 400, 404, 414, 503][status_index];
        let served = [
            "full", "diff", "descriptors", "descriptors_delta",
            "digests", "status", "metrics", "shed",
        ][served_index];
        let head = ResponseHead {
            status,
            served,
            digest: with_digest.then(|| digest_from(&[tag])),
            body_len,
        };
        let bytes = head.encode().into_bytes();
        let parsed = parse_response_head(&bytes).expect("own head must parse");
        prop_assert_eq!(parsed.status, status);
        prop_assert_eq!(parsed.served, served);
        prop_assert_eq!(parsed.digest, head.digest);
        prop_assert_eq!(parsed.content_length, body_len);
        prop_assert_eq!(parsed.body_start, bytes.len());
    }
}
