//! The directory-cache daemon: a std-only TCP serving loop.
//!
//! One accept thread feeds a *bounded* queue of connections; a
//! thread-per-core worker pool drains it. When the queue is full the
//! accept thread answers the connection itself with an immediate
//! `503 Service Unavailable` and closes it — load is shed visibly (a
//! counter and a trace event), never left to time out in a backlog the
//! daemon pretends not to have. Workers parse one request per
//! connection ([`proto::parse_request`]), look the answer up in the
//! shared [`ServingStore`] (read-lock + `Arc` clone, no I/O under the
//! lock), write it, and record the request latency in a
//! `partialtor-obs` histogram plus an `http_request` trace event.
//!
//! `/metrics` is answered by the daemon itself from its [`Registry`]
//! snapshot, hand-rolled JSON — the same shape `dirload --metrics`
//! writes, so the CI smoke can parse either end.

use crate::proto::{self, DocRequest, Parsed, ResponseHead, MAX_REQUEST_BYTES};
use crate::store::ServingStore;
use partialtor_obs::{MetricsSnapshot, Registry, TraceEvent, Tracer};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Daemon tuning knobs.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// Bind address; port 0 picks an ephemeral port (read it back from
    /// [`Daemon::local_addr`]).
    pub addr: String,
    /// Worker threads; 0 means one per available core.
    pub workers: usize,
    /// Accepted connections allowed to wait for a worker before new
    /// arrivals are shed with `503`.
    pub max_pending: usize,
    /// Per-connection read/write timeout.
    pub io_timeout: Duration,
    /// Request metrics sink (share it to read the counters back).
    pub registry: Registry,
    /// Trace sink for `http_request` events (disabled by default).
    pub tracer: Tracer,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            max_pending: 64,
            io_timeout: Duration::from_secs(5),
            registry: Registry::new(),
            tracer: Tracer::disabled(),
        }
    }
}

/// The bounded handoff between the accept thread and the workers.
struct ConnQueue {
    queue: Mutex<(VecDeque<TcpStream>, bool)>,
    ready: Condvar,
    capacity: usize,
}

impl ConnQueue {
    fn new(capacity: usize) -> Self {
        ConnQueue {
            queue: Mutex::new((VecDeque::new(), false)),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues the connection, or hands it back when the queue is full
    /// (the caller sheds it).
    fn offer(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut guard = self.queue.lock().expect("conn queue");
        if guard.0.len() >= self.capacity {
            return Err(stream);
        }
        guard.0.push_back(stream);
        drop(guard);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next connection; `None` once closed and drained.
    fn take(&self) -> Option<TcpStream> {
        let mut guard = self.queue.lock().expect("conn queue");
        loop {
            if let Some(stream) = guard.0.pop_front() {
                return Some(stream);
            }
            if guard.1 {
                return None;
            }
            guard = self.ready.wait(guard).expect("conn queue");
        }
    }

    fn close(&self) {
        self.queue.lock().expect("conn queue").1 = true;
        self.ready.notify_all();
    }
}

/// A running daemon; dropping it (or calling [`Daemon::shutdown`])
/// stops the listener and joins every thread.
pub struct Daemon {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    queue: Arc<ConnQueue>,
    threads: Vec<JoinHandle<()>>,
}

impl Daemon {
    /// Binds, spawns the accept thread and the worker pool, and returns
    /// immediately.
    pub fn start(config: DaemonConfig, store: Arc<ServingStore>) -> std::io::Result<Daemon> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let workers = if config.workers == 0 {
            thread::available_parallelism()
                .map(usize::from)
                .unwrap_or(4)
        } else {
            config.workers
        };
        let stop = Arc::new(AtomicBool::new(false));
        let queue = Arc::new(ConnQueue::new(config.max_pending));
        let started = Instant::now();
        let mut threads = Vec::with_capacity(workers + 1);

        for _ in 0..workers {
            let queue = queue.clone();
            let store = store.clone();
            let registry = config.registry.clone();
            let tracer = config.tracer.clone();
            let io_timeout = config.io_timeout;
            threads.push(thread::spawn(move || {
                while let Some(stream) = queue.take() {
                    handle_connection(stream, &store, &registry, &tracer, io_timeout, started);
                }
            }));
        }

        {
            let stop = stop.clone();
            let queue = queue.clone();
            let registry = config.registry.clone();
            let tracer = config.tracer.clone();
            threads.push(thread::spawn(move || {
                for incoming in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = incoming else { continue };
                    if let Err(shed) = queue.offer(stream) {
                        shed_connection(shed, &registry, &tracer, started);
                    }
                }
            }));
        }

        Ok(Daemon {
            addr,
            stop,
            queue,
            threads,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains queued connections, joins every thread.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with one last connection to ourselves.
        let _ = TcpStream::connect(self.addr);
        self.queue.close();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Answers a connection the queue refused: an immediate 503, counted
/// and traced, so the load generator sees shed load rather than a
/// timeout.
fn shed_connection(mut stream: TcpStream, registry: &Registry, tracer: &Tracer, started: Instant) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let head = ResponseHead {
        status: 503,
        served: "shed",
        digest: None,
        body_len: 0,
    };
    let _ = stream.write_all(head.encode().as_bytes());
    registry.inc("dircached.shed", 1);
    tracer.emit(TraceEvent::HttpRequest {
        at_secs: started.elapsed().as_secs_f64(),
        status: 503,
        served: "shed",
        bytes: 0,
    });
}

/// Reads one request (incrementally, bounded by [`MAX_REQUEST_BYTES`]),
/// answers it, records latency + class counters + a trace event.
fn handle_connection(
    mut stream: TcpStream,
    store: &ServingStore,
    registry: &Registry,
    tracer: &Tracer,
    io_timeout: Duration,
    started: Instant,
) {
    let _ = stream.set_read_timeout(Some(io_timeout));
    let _ = stream.set_write_timeout(Some(io_timeout));
    let begin = Instant::now();

    let mut buf = Vec::with_capacity(256);
    let mut chunk = [0u8; 1024];
    let request = loop {
        match proto::parse_request(&buf) {
            Parsed::Request(request, _) => break Ok(request),
            Parsed::Bad(status) => break Err(status),
            Parsed::NeedMore => {}
        }
        match stream.read(&mut chunk) {
            Ok(0) => break Err(400),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => {
                // Read timeout or reset: nothing sensible to answer.
                registry.inc("dircached.read_errors", 1);
                return;
            }
        }
        if buf.len() > MAX_REQUEST_BYTES {
            break Err(414);
        }
    };

    let (status, served, body, digest) = match request {
        Err(status) => (status, "error", Arc::new(Vec::new()), None),
        Ok(DocRequest::Metrics) => {
            let body = metrics_json(&registry.snapshot()).into_bytes();
            (200, "metrics", Arc::new(body), None)
        }
        Ok(request) => {
            let outcome = store.serve(&request);
            (outcome.status, outcome.served, outcome.body, outcome.digest)
        }
    };

    let head = ResponseHead {
        status,
        served,
        digest,
        body_len: body.len(),
    };
    let sent = stream
        .write_all(head.encode().as_bytes())
        .and_then(|()| stream.write_all(&body))
        .is_ok();

    let elapsed = begin.elapsed().as_secs_f64();
    registry.observe("dircached.request_secs", elapsed);
    registry.inc("dircached.requests", 1);
    registry.inc(&format!("dircached.served.{served}"), 1);
    if !sent {
        registry.inc("dircached.write_errors", 1);
    }
    if status >= 400 {
        registry.inc("dircached.errors", 1);
    }
    registry.inc("dircached.payload_bytes", body.len() as u64);
    tracer.emit(TraceEvent::HttpRequest {
        at_secs: started.elapsed().as_secs_f64(),
        status: status as u64,
        served,
        bytes: body.len() as u64,
    });
}

/// Renders a metrics snapshot as JSON: counters and gauges verbatim,
/// histograms summarized to count/mean/p50/p90/p99.
pub fn metrics_json(snapshot: &MetricsSnapshot) -> String {
    fn num(value: f64) -> String {
        if value.is_finite() {
            format!("{value:.9}")
        } else {
            "null".to_string()
        }
    }
    let mut out = String::from("{\"counters\":{");
    for (i, (name, value)) in snapshot.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{name}\":{value}"));
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, value)) in snapshot.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{name}\":{}", num(*value)));
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, hist)) in snapshot.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\"{name}\":{{\"count\":{},\"mean_secs\":{},\"p50_secs\":{},\"p90_secs\":{},\"p99_secs\":{}}}",
            hist.count(),
            hist.mean_secs().map_or("null".to_string(), num),
            hist.p50().map_or("null".to_string(), num),
            hist.p90().map_or("null".to_string(), num),
            hist.p99().map_or("null".to_string(), num),
        ));
    }
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_json_is_well_formed() {
        let registry = Registry::new();
        registry.inc("dircached.requests", 3);
        registry.set_gauge("uptime_secs", 1.5);
        registry.observe("dircached.request_secs", 0.010);
        let json = metrics_json(&registry.snapshot());
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"dircached.requests\":3"));
        assert!(json.contains("\"count\":1"));
        assert!(!json.contains("NaN"));
    }

    #[test]
    fn queue_sheds_beyond_capacity_and_drains_on_close() {
        let queue = ConnQueue::new(1);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let b = TcpStream::connect(addr).unwrap();
        assert!(queue.offer(a).is_ok());
        assert!(queue.offer(b).is_err(), "second offer must bounce");
        queue.close();
        assert!(queue.take().is_some(), "queued conn drains after close");
        assert!(queue.take().is_none());
    }
}
