//! Deterministic consensus series for a standalone daemon.
//!
//! The daemon needs real [`Consensus`] documents to serve. Outside a
//! test that brings its own, it builds an hourly series the same way
//! the measured document model does: one relay population, a sliding
//! window per hour so consecutive documents differ by a realistic churn
//! slice, nine authorities voting, [`aggregate`] producing each hour's
//! document. Fully deterministic for a fixed seed.

use partialtor_tordoc::prelude::*;

/// Parameters of a generated consensus series.
#[derive(Clone, Copy, Debug)]
pub struct DocSetConfig {
    /// Population seed.
    pub seed: u64,
    /// Relays listed by each document.
    pub relays: usize,
    /// Documents in the series (hours).
    pub history: usize,
    /// Relays churned (dropped + added) between consecutive hours.
    pub churn_per_hour: usize,
}

impl Default for DocSetConfig {
    fn default() -> Self {
        DocSetConfig {
            seed: 7,
            relays: 500,
            history: 4,
            churn_per_hour: 10,
        }
    }
}

/// Builds the hourly series: document `h` lists the population window
/// `[h·churn, h·churn + relays)` and is valid from hour `h + 1`.
pub fn consensus_series(config: &DocSetConfig) -> Vec<Consensus> {
    let population = generate_population(&PopulationConfig {
        seed: config.seed,
        count: config.relays + config.history * config.churn_per_hour,
    });
    (0..config.history)
        .map(|h| {
            let start = h * config.churn_per_hour;
            let window = &population[start..start + config.relays];
            let committee = AuthoritySet::live(config.seed);
            let votes: Vec<Vote> = committee
                .iter()
                .map(|auth| {
                    let view = authority_view(window, auth.id, config.seed, &ViewConfig::default());
                    Vote::new(
                        VoteMeta::standard(
                            auth.id,
                            &auth.name,
                            auth.fingerprint_hex(),
                            3_600 * (h as u64 + 1),
                        ),
                        view,
                    )
                })
                .collect();
            let refs: Vec<&Vote> = votes.iter().collect();
            aggregate(&refs)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_is_deterministic_and_churns() {
        let config = DocSetConfig {
            relays: 60,
            history: 3,
            churn_per_hour: 5,
            ..DocSetConfig::default()
        };
        let a = consensus_series(&config);
        let b = consensus_series(&config);
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.digest(), y.digest(), "series must be deterministic");
        }
        assert_ne!(a[0].digest(), a[1].digest(), "hours must differ");
        // Consecutive documents share most relays — diffable churn, not
        // disjoint sets.
        let ids: Vec<std::collections::BTreeSet<_>> = a
            .iter()
            .map(|c| c.entries.iter().map(|e| e.id).collect())
            .collect();
        let shared = ids[0].intersection(&ids[1]).count();
        assert!(shared > 40, "windows must overlap: {shared}");
        assert!(shared < 60, "windows must churn");
    }
}
