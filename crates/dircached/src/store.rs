//! The serving store: pre-encoded payloads behind one `RwLock`.
//!
//! [`ServingStore::publish`] pushes a consensus through a
//! [`DiffStore`], takes every retained response out via
//! [`Served::into_owned`](partialtor_tordoc::serve::Served::into_owned)
//! (the lock-free handoff the tordoc satellite added), and pre-encodes
//! the payload bytes workers will write:
//! the full latest document, one diff per retained base, the full
//! descriptor set, and per-base descriptor deltas (relays present in
//! the latest document but not in the base). Serving a request is then
//! a read-lock, a `BTreeMap` lookup and an `Arc` clone — the daemon's
//! workers never encode documents and never hold the lock during I/O,
//! so publish churn cannot tear a response half-written.

use crate::proto::DocRequest;
use partialtor_crypto::Digest32;
use partialtor_dirdist::docmodel::MICRODESC_PER_RELAY_BYTES;
use partialtor_tordoc::serve::{DiffStore, ServedOwned};
use partialtor_tordoc::{Consensus, RelayId};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, RwLock};

/// What the store answers a routed request with: ready-to-write bytes
/// plus the response metadata.
#[derive(Clone, Debug)]
pub struct ServeOutcome {
    /// HTTP status (200 or 404).
    pub status: u16,
    /// Served-class label (the `X-Served` header and metrics key).
    pub served: &'static str,
    /// Digest of the document the body yields, when it is a document.
    pub digest: Option<Digest32>,
    /// The payload (shared, never copied per request).
    pub body: Arc<Vec<u8>>,
}

struct State {
    store: DiffStore,
    /// Digests newest-first: `[0]` is the latest, the rest retained
    /// bases in recency order.
    history: Vec<Digest32>,
    latest: Option<Arc<Vec<u8>>>,
    latest_digest: Option<Digest32>,
    diffs: BTreeMap<Digest32, Arc<Vec<u8>>>,
    descriptors_full: Arc<Vec<u8>>,
    descriptor_deltas: BTreeMap<Digest32, Arc<Vec<u8>>>,
    relay_sets: BTreeMap<Digest32, BTreeSet<RelayId>>,
    digest_index: Arc<Vec<u8>>,
}

/// The daemon's shared document store.
pub struct ServingStore {
    retain: usize,
    state: RwLock<State>,
}

/// One relay's synthetic microdescriptor: a recognizable line padded to
/// the calibrated wire size the simulation charges for it.
fn descriptor_bytes(id: &RelayId) -> Vec<u8> {
    let mut line = format!("micro {}\n", id.fingerprint()).into_bytes();
    line.resize(MICRODESC_PER_RELAY_BYTES as usize, b'#');
    line
}

fn descriptor_payload<'a>(ids: impl Iterator<Item = &'a RelayId>) -> Vec<u8> {
    let mut out = Vec::new();
    for id in ids {
        out.extend_from_slice(&descriptor_bytes(id));
    }
    out
}

impl ServingStore {
    /// An empty store retaining diffs from up to `retain` predecessors.
    pub fn new(retain: usize) -> Self {
        ServingStore {
            retain,
            state: RwLock::new(State {
                store: DiffStore::new(retain),
                history: Vec::new(),
                latest: None,
                latest_digest: None,
                diffs: BTreeMap::new(),
                descriptors_full: Arc::new(Vec::new()),
                descriptor_deltas: BTreeMap::new(),
                relay_sets: BTreeMap::new(),
                digest_index: Arc::new(Vec::new()),
            }),
        }
    }

    /// Publishes a new latest consensus: recomputes the diff set and
    /// pre-encodes every payload under the write lock. Readers blocked
    /// for the duration see either the old document set or the new one,
    /// never a mix.
    pub fn publish(&self, consensus: Consensus) {
        let digest = consensus.digest();
        let relay_ids: BTreeSet<RelayId> = consensus.entries.iter().map(|e| e.id).collect();

        let mut state = self.state.write().expect("serving store");
        state.store.publish(consensus);
        state.history.insert(0, digest);
        state.history.truncate(self.retain + 1);
        let keep = state.history.clone();
        state
            .relay_sets
            .retain(|d, _| keep.contains(d) || *d == digest);
        state.relay_sets.insert(digest, relay_ids);

        // Pre-encode what each retained base will be answered with.
        let bases: Vec<Digest32> = state.history[1..].to_vec();
        let mut diffs = BTreeMap::new();
        let mut deltas = BTreeMap::new();
        let latest_ids = state.relay_sets[&digest].clone();
        for base in bases {
            if let Some(ServedOwned::Diff(diff)) =
                state.store.serve(Some(&base)).map(|s| s.into_owned())
            {
                diffs.insert(base, Arc::new(diff.encode().into_bytes()));
            }
            if let Some(base_ids) = state.relay_sets.get(&base) {
                let delta = descriptor_payload(latest_ids.difference(base_ids));
                deltas.insert(base, Arc::new(delta));
            }
        }
        let latest = state
            .store
            .latest()
            .expect("just published")
            .encode()
            .into_bytes();
        let mut index = String::new();
        for (age, d) in state.history.iter().enumerate() {
            index.push_str(&format!("digest {} age={age}\n", d.to_hex()));
        }

        state.latest = Some(Arc::new(latest));
        state.latest_digest = Some(digest);
        state.diffs = diffs;
        state.descriptor_deltas = deltas;
        state.descriptors_full = Arc::new(descriptor_payload(latest_ids.iter()));
        state.digest_index = Arc::new(index.into_bytes());
    }

    /// Digest of the latest published document.
    pub fn latest_digest(&self) -> Option<Digest32> {
        self.state.read().expect("serving store").latest_digest
    }

    /// Retained digests, newest first (the latest, then the diffable
    /// bases).
    pub fn history(&self) -> Vec<Digest32> {
        self.state.read().expect("serving store").history.clone()
    }

    /// Answers a routed request. Read-lock + lookup + `Arc` clone; the
    /// lock is released before the caller touches a socket.
    /// [`DocRequest::Metrics`] is the daemon's business (it owns the
    /// registry) and is answered `404` here.
    pub fn serve(&self, request: &DocRequest) -> ServeOutcome {
        let state = self.state.read().expect("serving store");
        let not_found = |served: &'static str| ServeOutcome {
            status: 404,
            served,
            digest: None,
            body: Arc::new(Vec::new()),
        };
        let Some(latest_digest) = state.latest_digest else {
            return not_found("error");
        };
        let latest = state.latest.as_ref().expect("published").clone();
        match request {
            DocRequest::Consensus { base } => {
                if let Some(diff) = base.as_ref().and_then(|b| state.diffs.get(b)) {
                    ServeOutcome {
                        status: 200,
                        served: "diff",
                        digest: Some(latest_digest),
                        body: diff.clone(),
                    }
                } else {
                    ServeOutcome {
                        status: 200,
                        served: "full",
                        digest: Some(latest_digest),
                        body: latest,
                    }
                }
            }
            DocRequest::ConsensusDiff { base } => match state.diffs.get(base) {
                Some(diff) => ServeOutcome {
                    status: 200,
                    served: "diff",
                    digest: Some(latest_digest),
                    body: diff.clone(),
                },
                None => not_found("error"),
            },
            DocRequest::Descriptors { base } => {
                match base.as_ref().and_then(|b| state.descriptor_deltas.get(b)) {
                    Some(delta) => ServeOutcome {
                        status: 200,
                        served: "descriptors_delta",
                        digest: Some(latest_digest),
                        body: delta.clone(),
                    },
                    None => ServeOutcome {
                        status: 200,
                        served: "descriptors",
                        digest: Some(latest_digest),
                        body: state.descriptors_full.clone(),
                    },
                }
            }
            DocRequest::Digests => ServeOutcome {
                status: 200,
                served: "digests",
                digest: Some(latest_digest),
                body: state.digest_index.clone(),
            },
            DocRequest::Status => ServeOutcome {
                status: 200,
                served: "status",
                digest: Some(latest_digest),
                body: Arc::new(
                    format!(
                        "ok latest={} retained={}\n",
                        latest_digest.to_hex(),
                        state.history.len().saturating_sub(1)
                    )
                    .into_bytes(),
                ),
            },
            DocRequest::Metrics => not_found("error"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::docs::{consensus_series, DocSetConfig};
    use partialtor_tordoc::ConsensusDiff;

    fn store_with(history: usize) -> (ServingStore, Vec<Consensus>) {
        let docs = consensus_series(&DocSetConfig {
            relays: 60,
            history,
            churn_per_hour: 5,
            ..DocSetConfig::default()
        });
        let store = ServingStore::new(3);
        for doc in &docs {
            store.publish(doc.clone());
        }
        (store, docs)
    }

    #[test]
    fn serves_verifiable_fulls_and_diffs() {
        let (store, docs) = store_with(3);
        let latest = docs.last().unwrap();

        let full = store.serve(&DocRequest::Consensus { base: None });
        assert_eq!((full.status, full.served), (200, "full"));
        assert_eq!(full.body.as_slice(), latest.encode().as_bytes());

        let base = docs[1].digest();
        let diff = store.serve(&DocRequest::Consensus { base: Some(base) });
        assert_eq!((diff.status, diff.served), (200, "diff"));
        let parsed = ConsensusDiff::parse(std::str::from_utf8(&diff.body).unwrap())
            .expect("served diff parses");
        let rebuilt = parsed.apply(&docs[1]).expect("diff applies to its base");
        assert_eq!(rebuilt.digest(), latest.digest());
        assert_eq!(diff.digest, Some(latest.digest()));
    }

    #[test]
    fn unknown_base_falls_back_to_full_and_explicit_diff_404s() {
        let (store, _) = store_with(2);
        let stranger = partialtor_crypto::sha256::digest(b"not a consensus");
        let fallback = store.serve(&DocRequest::Consensus {
            base: Some(stranger),
        });
        assert_eq!((fallback.status, fallback.served), (200, "full"));
        let diff = store.serve(&DocRequest::ConsensusDiff { base: stranger });
        assert_eq!(diff.status, 404);
    }

    #[test]
    fn descriptor_deltas_cover_exactly_the_churned_relays() {
        let (store, docs) = store_with(3);
        let base = &docs[1];
        let latest = docs.last().unwrap();
        let base_ids: BTreeSet<RelayId> = base.entries.iter().map(|e| e.id).collect();
        let new_ids: Vec<RelayId> = latest
            .entries
            .iter()
            .map(|e| e.id)
            .filter(|id| !base_ids.contains(id))
            .collect();

        let delta = store.serve(&DocRequest::Descriptors {
            base: Some(base.digest()),
        });
        assert_eq!((delta.status, delta.served), (200, "descriptors_delta"));
        assert_eq!(
            delta.body.len() as u64,
            new_ids.len() as u64 * MICRODESC_PER_RELAY_BYTES,
            "one padded descriptor per churned relay"
        );
        let full = store.serve(&DocRequest::Descriptors { base: None });
        assert_eq!(
            full.body.len() as u64,
            latest.entries.len() as u64 * MICRODESC_PER_RELAY_BYTES
        );
        assert!(delta.body.len() < full.body.len());
    }

    #[test]
    fn digest_index_lists_history_newest_first() {
        let (store, docs) = store_with(3);
        let index = store.serve(&DocRequest::Digests);
        let text = String::from_utf8(index.body.to_vec()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains(&docs[2].digest().to_hex()));
        assert!(lines[0].ends_with("age=0"));
        assert!(lines[1].contains(&docs[1].digest().to_hex()));
        let history = store.history();
        assert_eq!(history[0], docs[2].digest());
    }

    #[test]
    fn empty_store_404s_everything() {
        let store = ServingStore::new(3);
        assert_eq!(
            store.serve(&DocRequest::Consensus { base: None }).status,
            404
        );
        assert_eq!(store.latest_digest(), None);
    }
}
