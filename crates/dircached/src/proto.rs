//! The wire protocol: a minimal HTTP/1.0 subset.
//!
//! Tor's directory port speaks plain HTTP; this module implements just
//! the slice the serving path needs, as pure functions over byte
//! buffers so the parser is trivially proptestable with no sockets
//! involved:
//!
//! * `GET /tor/status-vote/current/consensus` — the latest consensus;
//!   with an `If-Consensus-Hash: <hex>` header the server may answer
//!   with a proposal-140 diff from that base instead (the
//!   `DiffStore::serve` negotiation on the wire);
//! * `GET /tor/status-vote/current/consensus/diff/<hex>` — explicitly a
//!   diff from the named base, `404` when the base is not retained;
//! * `GET /tor/server/all` — the descriptor set; with
//!   `If-Consensus-Hash` only the relays churned since that base;
//! * `GET /tor/status-vote/current/consensus-digests` — the retained
//!   base index (latest first), which `dirload` uses to aim refreshes;
//! * `GET /tor/status` — liveness probe; `GET /metrics` — the obs
//!   registry as JSON.
//!
//! Responses carry `Content-Length`, an `X-Served` class label and,
//! for document payloads, `X-Consensus-Digest` so clients can verify
//! integrity end to end. Parsing never panics: anything malformed maps
//! to a 4xx status ([`Parsed::Bad`]) the daemon answers before closing,
//! and a request line that outgrows [`MAX_REQUEST_BYTES`] without
//! terminating is a `414`.

use partialtor_crypto::Digest32;

/// Hard cap on a request's size (request line plus headers). A buffer
/// that reaches this size with no terminator is answered `414` and
/// closed — the bound that keeps slow-loris reads from holding memory.
pub const MAX_REQUEST_BYTES: usize = 4_096;

/// The HTTP version string the daemon and generator speak.
pub const HTTP_VERSION: &str = "HTTP/1.0";

/// One parsed, routed document request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DocRequest {
    /// The latest consensus; with `base`, a diff from it if retained.
    Consensus {
        /// The digest the client already holds (`If-Consensus-Hash`).
        base: Option<Digest32>,
    },
    /// Explicitly a diff from `base` to the latest document.
    ConsensusDiff {
        /// The diff's base digest (from the request path).
        base: Digest32,
    },
    /// The descriptor set; with `base`, only relays churned since it.
    Descriptors {
        /// The consensus digest the client's descriptors match.
        base: Option<Digest32>,
    },
    /// The retained base-digest index (latest first).
    Digests,
    /// Liveness probe.
    Status,
    /// The obs metrics registry as JSON.
    Metrics,
}

impl DocRequest {
    /// The request path (without the negotiation header).
    pub fn path(&self) -> String {
        match self {
            DocRequest::Consensus { .. } => "/tor/status-vote/current/consensus".to_string(),
            DocRequest::ConsensusDiff { base } => {
                format!("/tor/status-vote/current/consensus/diff/{}", base.to_hex())
            }
            DocRequest::Descriptors { .. } => "/tor/server/all".to_string(),
            DocRequest::Digests => "/tor/status-vote/current/consensus-digests".to_string(),
            DocRequest::Status => "/tor/status".to_string(),
            DocRequest::Metrics => "/metrics".to_string(),
        }
    }

    /// The full request bytes ([`parse_request`] is the exact inverse —
    /// a proptest pins the round trip).
    pub fn encode(&self) -> String {
        let mut out = format!("GET {} {HTTP_VERSION}\r\n", self.path());
        let base = match self {
            DocRequest::Consensus { base } | DocRequest::Descriptors { base } => base.as_ref(),
            _ => None,
        };
        if let Some(digest) = base {
            out.push_str(&format!("If-Consensus-Hash: {}\r\n", digest.to_hex()));
        }
        out.push_str("\r\n");
        out
    }
}

/// One step of incremental request parsing over a growing buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Parsed {
    /// The buffer does not yet hold a complete request.
    NeedMore,
    /// A complete, routed request, and how many bytes it consumed.
    Request(DocRequest, usize),
    /// Malformed or unroutable input: answer with this status and
    /// close. Never a panic, whatever the bytes.
    Bad(u16),
}

/// Finds the end of the header block: the index just past the first
/// blank line (`\r\n\r\n` or `\n\n`).
fn header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|i| i + 4)
        .into_iter()
        .chain(buf.windows(2).position(|w| w == b"\n\n").map(|i| i + 2))
        .min()
}

/// Incrementally parses one request from `buf`. Feed it the buffer
/// after every read: [`Parsed::NeedMore`] means keep reading,
/// [`Parsed::Bad`] means answer the status and close.
pub fn parse_request(buf: &[u8]) -> Parsed {
    let Some(end) = header_end(buf) else {
        return if buf.len() >= MAX_REQUEST_BYTES {
            Parsed::Bad(414)
        } else {
            Parsed::NeedMore
        };
    };
    if end > MAX_REQUEST_BYTES {
        return Parsed::Bad(414);
    }
    let Ok(head) = std::str::from_utf8(&buf[..end]) else {
        return Parsed::Bad(400);
    };
    let mut lines = head.lines().filter(|l| !l.is_empty());
    let Some(request_line) = lines.next() else {
        return Parsed::Bad(400);
    };
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Parsed::Bad(400);
    };
    if method != "GET" || !version.starts_with("HTTP/") {
        return Parsed::Bad(400);
    }

    let mut base: Option<Digest32> = None;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return Parsed::Bad(400);
        };
        if name.trim().eq_ignore_ascii_case("if-consensus-hash") {
            match Digest32::from_hex(value.trim()) {
                Some(digest) => base = Some(digest),
                None => return Parsed::Bad(400),
            }
        }
        // Unknown headers are tolerated, as HTTP requires.
    }

    let doc = match target {
        "/tor/status-vote/current/consensus" => DocRequest::Consensus { base },
        "/tor/server/all" => DocRequest::Descriptors { base },
        "/tor/status-vote/current/consensus-digests" => DocRequest::Digests,
        "/tor/status" => DocRequest::Status,
        "/metrics" => DocRequest::Metrics,
        _ => {
            if let Some(hex) = target.strip_prefix("/tor/status-vote/current/consensus/diff/") {
                match Digest32::from_hex(hex) {
                    Some(digest) => DocRequest::ConsensusDiff { base: digest },
                    None => return Parsed::Bad(400),
                }
            } else {
                return Parsed::Bad(404);
            }
        }
    };
    Parsed::Request(doc, end)
}

/// Standard reason phrase for the statuses the daemon sends.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        414 => "URI Too Long",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// The response metadata the daemon writes ahead of a body.
#[derive(Clone, Debug, PartialEq)]
pub struct ResponseHead {
    /// HTTP status code.
    pub status: u16,
    /// Served-class label (`full`, `diff`, `descriptors`, ... — the
    /// `X-Served` header).
    pub served: &'static str,
    /// Digest of the document the body yields, when it is a document.
    pub digest: Option<Digest32>,
    /// Body length, bytes (`Content-Length`).
    pub body_len: usize,
}

impl ResponseHead {
    /// Encodes the status line and headers (up to and including the
    /// blank line).
    pub fn encode(&self) -> String {
        let mut out = format!(
            "{HTTP_VERSION} {} {}\r\nContent-Length: {}\r\nX-Served: {}\r\n",
            self.status,
            status_text(self.status),
            self.body_len,
            self.served
        );
        if let Some(digest) = &self.digest {
            out.push_str(&format!("X-Consensus-Digest: {}\r\n", digest.to_hex()));
        }
        out.push_str("Connection: close\r\n\r\n");
        out
    }
}

/// A response head parsed back on the client side (`dirload`).
#[derive(Clone, Debug, PartialEq)]
pub struct ParsedResponse {
    /// HTTP status code.
    pub status: u16,
    /// The `X-Served` label (empty when absent).
    pub served: String,
    /// The `X-Consensus-Digest` header, when present and valid.
    pub digest: Option<Digest32>,
    /// Declared body length.
    pub content_length: usize,
    /// Offset where the body starts in the buffer the head was parsed
    /// from.
    pub body_start: usize,
}

/// Parses a response head from `buf`; `None` until the blank line has
/// arrived or when the head is malformed beyond use.
pub fn parse_response_head(buf: &[u8]) -> Option<ParsedResponse> {
    let end = header_end(buf)?;
    let head = std::str::from_utf8(&buf[..end]).ok()?;
    let mut lines = head.lines().filter(|l| !l.is_empty());
    let status_line = lines.next()?;
    let status: u16 = status_line.split_whitespace().nth(1)?.parse().ok()?;
    let mut served = String::new();
    let mut digest = None;
    let mut content_length = 0usize;
    for line in lines {
        let (name, value) = line.split_once(':')?;
        let value = value.trim();
        match name.trim().to_ascii_lowercase().as_str() {
            "content-length" => content_length = value.parse().ok()?,
            "x-served" => served = value.to_string(),
            "x-consensus-digest" => digest = Digest32::from_hex(value),
            _ => {}
        }
    }
    Some(ParsedResponse {
        status,
        served,
        digest,
        content_length,
        body_start: end,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest(tag: u8) -> Digest32 {
        partialtor_crypto::sha256::digest(&[tag])
    }

    #[test]
    fn canonical_requests_round_trip() {
        let requests = [
            DocRequest::Consensus { base: None },
            DocRequest::Consensus {
                base: Some(digest(1)),
            },
            DocRequest::ConsensusDiff { base: digest(2) },
            DocRequest::Descriptors { base: None },
            DocRequest::Descriptors {
                base: Some(digest(3)),
            },
            DocRequest::Digests,
            DocRequest::Status,
            DocRequest::Metrics,
        ];
        for request in requests {
            let bytes = request.encode();
            match parse_request(bytes.as_bytes()) {
                Parsed::Request(parsed, consumed) => {
                    assert_eq!(parsed, request);
                    assert_eq!(consumed, bytes.len());
                }
                other => panic!("{request:?} must parse: {other:?}"),
            }
        }
    }

    #[test]
    fn truncated_requests_need_more_and_oversized_close_414() {
        let full = DocRequest::Consensus {
            base: Some(digest(9)),
        }
        .encode();
        for cut in 0..full.len() - 1 {
            assert_eq!(
                parse_request(&full.as_bytes()[..cut]),
                Parsed::NeedMore,
                "cut at {cut}"
            );
        }
        let oversized = format!("GET /{} HTTP/1.0\r\n", "a".repeat(MAX_REQUEST_BYTES));
        assert_eq!(parse_request(oversized.as_bytes()), Parsed::Bad(414));
    }

    #[test]
    fn malformed_requests_map_to_4xx() {
        for (input, status) in [
            ("POST /tor/status HTTP/1.0\r\n\r\n", 400),
            ("GET /tor/status\r\n\r\n", 400),
            ("GET /nope HTTP/1.0\r\n\r\n", 404),
            ("GET /tor/status-vote/current/consensus/diff/zz HTTP/1.0\r\n\r\n", 400),
            ("GET /tor/status HTTP/1.0\r\nbroken header\r\n\r\n", 400),
            (
                "GET /tor/status-vote/current/consensus HTTP/1.0\r\nIf-Consensus-Hash: nope\r\n\r\n",
                400,
            ),
        ] {
            assert_eq!(parse_request(input.as_bytes()), Parsed::Bad(status), "{input:?}");
        }
    }

    #[test]
    fn response_head_round_trips() {
        let head = ResponseHead {
            status: 200,
            served: "diff",
            digest: Some(digest(4)),
            body_len: 12_345,
        };
        let mut bytes = head.encode().into_bytes();
        bytes.extend_from_slice(&[0u8; 16]);
        let parsed = parse_response_head(&bytes).expect("head parses");
        assert_eq!(parsed.status, 200);
        assert_eq!(parsed.served, "diff");
        assert_eq!(parsed.digest, Some(digest(4)));
        assert_eq!(parsed.content_length, 12_345);
        assert_eq!(parsed.body_start, bytes.len() - 16);
    }
}
