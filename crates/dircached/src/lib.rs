//! `partialtor-dircached` — the real directory-cache serving path.
//!
//! Every simulated number in this workspace rests on the per-cache
//! service budget the distribution session *assumes*
//! ([`partialtor_dirdist::per_cache_service_budget_bytes`]). This crate
//! is where that assumption meets real sockets: a std-only TCP daemon
//! ([`daemon::Daemon`]) that serves consensus documents, proposal-140
//! diffs and descriptor payloads out of a
//! [`DiffStore`](partialtor_tordoc::serve::DiffStore)-backed
//! [`store::ServingStore`] over a minimal HTTP/1.0-subset protocol
//! ([`proto`]), and an open-loop load generator ([`loadgen`], the
//! `dirload` binary) that replays a session hour's realized
//! [`FetchMix`](partialtor_dirdist::FetchMix) against it.
//!
//! The daemon is deliberately simple and deliberately honest about
//! load: a thread-per-core worker pool drains a *bounded* accept queue,
//! and a connection arriving when the queue is full is answered with an
//! immediate `503 Service Unavailable` and closed — load is shed, never
//! silently dropped, and the shed count is a first-class metric. Every
//! answered request lands in a `partialtor-obs` latency histogram and
//! (when enabled) an `http_request` trace event, so the daemon speaks
//! the same telemetry dialect as the simulation it cross-checks.
//!
//! `dirload --budget-check` closes the loop: measured payload bytes per
//! second, scaled to an hour, against the simulated per-cache budget —
//! the ratio the ROADMAP's serving-path item asked for.

pub mod daemon;
pub mod docs;
pub mod loadgen;
pub mod proto;
pub mod store;

pub use daemon::{metrics_json, Daemon, DaemonConfig};
pub use docs::{consensus_series, DocSetConfig};
pub use loadgen::{
    budget_check, synthesize_mix, BudgetCheck, LoadConfig, LoadReport, LATENCY_METRIC,
};
pub use proto::{DocRequest, Parsed, ResponseHead, MAX_REQUEST_BYTES};
pub use store::{ServeOutcome, ServingStore};
