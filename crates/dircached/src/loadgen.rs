//! The session-replay load generator (`dirload`).
//!
//! Takes one hour's realized [`FetchMix`] — exported from a
//! `DistSession` or synthesized here — and replays it against a running
//! daemon at a configurable *open-loop* rate: request `k` is due at
//! `start + k/rate` whether or not earlier requests have finished, so a
//! server falling behind faces a growing backlog exactly as it would in
//! production, instead of the closed-loop mercy of one-at-a-time
//! clients. The mix's classes map onto the wire protocol directly:
//! bootstraps become full consensus + full descriptor fetches,
//! refreshes become `If-Consensus-Hash` negotiations against a base of
//! the recorded age (answered with a proposal-140 diff when the daemon
//! retains it), and failed probes become the cheap status round trips a
//! retry storm burns.
//!
//! [`budget_check`] closes the loop the ROADMAP asks for: measured
//! payload bytes per second, scaled to an hour, against the per-cache
//! service budget the simulation *assumes*
//! ([`per_cache_service_budget_bytes`] at the default cache link rate).

use crate::proto::{parse_response_head, DocRequest};
use partialtor_crypto::Digest32;
use partialtor_dirdist::{
    per_cache_service_budget_bytes, CacheSimConfig, DistConfig, DistSession, DocModel, FetchMix,
    HourInput, LinkWindow, TierNode,
};
use partialtor_obs::{Histogram, Registry};
use partialtor_simnet::geo::{midpoint_ms, Region, CLIENT_WEIGHTS, REGIONS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Registry name the merged per-request latency histogram publishes
/// under (see [`LoadReport::publish_metrics`]).
pub const LATENCY_METRIC: &str = "dirload.request_latency";

/// Load-run parameters.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Daemon address (`host:port`).
    pub addr: String,
    /// How long to keep replaying (the mix is sampled with
    /// replacement, so any duration works against any mix).
    pub duration: Duration,
    /// Open-loop request rate, requests/second.
    pub rate: f64,
    /// Concurrent client connections (worker threads).
    pub connections: usize,
    /// Per-request connect/read timeout.
    pub timeout: Duration,
    /// Sampler seed (the class sequence is deterministic for a seed).
    pub seed: u64,
    /// Model client geography: each request pays the geo model's
    /// midpoint latency from a Tor-weighted client region to the
    /// cache's region before hitting the socket.
    pub geo: bool,
    /// The cache's region when `geo` is on.
    pub cache_region: Region,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: "127.0.0.1:9030".to_string(),
            duration: Duration::from_secs(2),
            rate: 200.0,
            connections: 4,
            timeout: Duration::from_secs(5),
            seed: 7,
            geo: false,
            cache_region: Region::Europe,
        }
    }
}

/// One replayable request class, weighted by the mix.
#[derive(Clone, Copy, Debug)]
enum ReqClass {
    /// Bootstrap: the full consensus.
    ConsensusFull,
    /// Bootstrap: the full descriptor set.
    DescriptorsFull,
    /// Refresh: consensus with a base of this recorded age.
    ConsensusRefresh(u64),
    /// Refresh: descriptors churned since a base of this age.
    DescriptorsDelta(u64),
    /// A failed probe's cheap round trip.
    Probe,
}

/// What one run measured.
#[derive(Clone, Debug, Default)]
pub struct LoadReport {
    /// Requests issued.
    pub sent: u64,
    /// Requests answered with a complete response.
    pub completed: u64,
    /// Connect/read/write failures and timeouts.
    pub failed: u64,
    /// Responses shed by the daemon (`503`).
    pub shed: u64,
    /// Bootstrap full-consensus requests issued.
    pub bootstrap_fulls: u64,
    /// Refresh consensus requests issued (diff-eligible).
    pub refresh_requests: u64,
    /// Refresh consensus requests actually answered with a diff.
    pub diff_hits: u64,
    /// Descriptor requests issued (full + delta).
    pub descriptor_requests: u64,
    /// Probe round trips issued.
    pub probes: u64,
    /// Payload bytes received (bodies only, headers excluded).
    pub payload_bytes: u64,
    /// Wall-clock duration of the run, seconds.
    pub wall_secs: f64,
    /// Per-request latency (connect through last body byte, plus the
    /// geo delay when enabled).
    pub latency: Histogram,
}

impl LoadReport {
    fn merge(&mut self, other: &LoadReport) {
        self.sent += other.sent;
        self.completed += other.completed;
        self.failed += other.failed;
        self.shed += other.shed;
        self.bootstrap_fulls += other.bootstrap_fulls;
        self.refresh_requests += other.refresh_requests;
        self.diff_hits += other.diff_hits;
        self.descriptor_requests += other.descriptor_requests;
        self.probes += other.probes;
        self.payload_bytes += other.payload_bytes;
        self.latency.merge(&other.latency);
    }

    /// Completed requests per second of wall clock.
    pub fn achieved_rps(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.completed as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    /// Publishes the run into a shared obs [`Registry`]: the outcome
    /// counters under `dirload.*` and the latency histogram — merged
    /// exactly, not resampled — under [`LATENCY_METRIC`]. Lets a
    /// harness aggregate several runs (or a run plus a daemon's own
    /// registry) in one snapshot.
    pub fn publish_metrics(&self, registry: &Registry) {
        registry.inc("dirload.sent", self.sent);
        registry.inc("dirload.completed", self.completed);
        registry.inc("dirload.failed", self.failed);
        registry.inc("dirload.shed", self.shed);
        registry.inc("dirload.payload_bytes", self.payload_bytes);
        registry.merge_histogram(LATENCY_METRIC, &self.latency);
    }

    /// Fraction of refresh consensus requests answered with a diff.
    pub fn diff_hit_rate(&self) -> f64 {
        if self.refresh_requests > 0 {
            self.diff_hits as f64 / self.refresh_requests as f64
        } else {
            0.0
        }
    }

    /// The report as JSON (hand-rolled; the CI smoke parses this).
    pub fn to_json(&self, budget: Option<&BudgetCheck>) -> String {
        fn opt(v: Option<f64>) -> String {
            match v {
                Some(x) if x.is_finite() => format!("{x:.9}"),
                _ => "null".to_string(),
            }
        }
        let mut out = format!(
            concat!(
                "{{\"sent\":{},\"completed\":{},\"failed\":{},\"shed\":{},",
                "\"bootstrap_fulls\":{},\"refresh_requests\":{},\"diff_hits\":{},",
                "\"descriptor_requests\":{},\"probes\":{},\"payload_bytes\":{},",
                "\"wall_secs\":{:.6},\"achieved_rps\":{:.3},\"diff_hit_rate\":{:.6},",
                "\"latency\":{{\"count\":{},\"p50_secs\":{},\"p90_secs\":{},",
                "\"p99_secs\":{},\"p999_secs\":{}}}"
            ),
            self.sent,
            self.completed,
            self.failed,
            self.shed,
            self.bootstrap_fulls,
            self.refresh_requests,
            self.diff_hits,
            self.descriptor_requests,
            self.probes,
            self.payload_bytes,
            self.wall_secs,
            self.achieved_rps(),
            self.diff_hit_rate(),
            self.latency.count(),
            opt(self.latency.p50()),
            opt(self.latency.p90()),
            opt(self.latency.p99()),
            opt(self.latency.p999()),
        );
        if let Some(check) = budget {
            out.push_str(&format!(
                ",\"budget\":{{\"measured_bytes_per_hour\":{:.0},\"assumed_bytes_per_hour\":{},\"ratio\":{:.6}}}",
                check.measured_bytes_per_hour, check.assumed_bytes_per_hour, check.ratio
            ));
        }
        out.push('}');
        out
    }
}

/// Measured serving capacity against the simulation's assumed per-cache
/// service budget.
#[derive(Clone, Copy, Debug)]
pub struct BudgetCheck {
    /// Payload bytes/second achieved, scaled to an hour.
    pub measured_bytes_per_hour: f64,
    /// What one simulated cache is assumed able to serve per hour
    /// (default cache link, no background load).
    pub assumed_bytes_per_hour: u64,
    /// measured / assumed: above 1.0 the simulation's budget is
    /// conservative relative to this hardware, below it optimistic.
    pub ratio: f64,
}

/// Converts a run into the empirical budget ratio.
pub fn budget_check(report: &LoadReport) -> BudgetCheck {
    let per_sec = if report.wall_secs > 0.0 {
        report.payload_bytes as f64 / report.wall_secs
    } else {
        0.0
    };
    let assumed = per_cache_service_budget_bytes(CacheSimConfig::default().cache_bps, 0.0);
    BudgetCheck {
        measured_bytes_per_hour: per_sec * 3_600.0,
        assumed_bytes_per_hour: assumed,
        ratio: per_sec * 3_600.0 / assumed as f64,
    }
}

/// Synthesizes a default mix when no `--mix` export is given: a small
/// feedback-on session stepped through two produced hours, an outage
/// long enough to outlive consensus validity, and a recovery hour —
/// then *composited* across all hours, so the replay always carries
/// every class: refresh diffs from the steady hours, failed probes from
/// the outage, and the recovery hour's bootstrap storm of fulls.
pub fn synthesize_mix(seed: u64) -> FetchMix {
    let failed_hours = 3..=6u64;
    let config = DistConfig {
        seed,
        clients: 50_000,
        n_caches: 10,
        link_windows: failed_hours
            .clone()
            .flat_map(|h| {
                (0..5).map(move |i| LinkWindow {
                    node: TierNode::Authority(i),
                    start_secs: h as f64 * 3_600.0,
                    duration_secs: 300.0,
                    bps: 0.5e6,
                })
            })
            .collect(),
        feedback: true,
        ..DistConfig::default()
    };
    let mut session = DistSession::new(&config, DocModel::synthetic(2_000));
    for hour in 1..=7u64 {
        let input = if failed_hours.contains(&hour) {
            HourInput::failed()
        } else {
            HourInput::produced(0.0)
        };
        session.step_hour(input);
    }
    let mixes = session.fetch_mixes();
    let busiest_hour = FetchMix::busiest(&mixes).map_or(0, |m| m.hour);
    let mut composite = FetchMix {
        hour: busiest_hour,
        bootstraps: Vec::new(),
        refreshes: Vec::new(),
        failed_probes: 0,
    };
    for mix in &mixes {
        composite.bootstraps.extend(mix.bootstraps.iter().copied());
        composite.refreshes.extend(mix.refreshes.iter().copied());
        composite.failed_probes += mix.failed_probes;
    }
    // A multi-hour outage composite is nearly all probes (the retry
    // storm); cap them at half the replayed traffic so short default
    // runs still exercise the document-serving classes densely.
    let document_weight = 2 * (composite.bootstrap_count() + composite.refresh_count());
    composite.failed_probes = composite.failed_probes.min(document_weight);
    composite
}

/// Flattens a mix into `(weight, class)` rows for sampling with
/// replacement.
fn class_weights(mix: &FetchMix) -> Vec<(u64, ReqClass)> {
    let mut rows = Vec::new();
    for b in &mix.bootstraps {
        rows.push((b.count, ReqClass::ConsensusFull));
        rows.push((b.count, ReqClass::DescriptorsFull));
    }
    for r in &mix.refreshes {
        rows.push((r.count, ReqClass::ConsensusRefresh(r.base_age_hours)));
        rows.push((r.count, ReqClass::DescriptorsDelta(r.base_age_hours)));
    }
    if mix.failed_probes > 0 {
        rows.push((mix.failed_probes, ReqClass::Probe));
    }
    rows.retain(|(count, _)| *count > 0);
    rows
}

fn sample_class(rows: &[(u64, ReqClass)], rng: &mut StdRng) -> ReqClass {
    let total: u64 = rows.iter().map(|(count, _)| count).sum();
    let mut pick = rng.gen_range(0..total);
    for (count, class) in rows {
        if pick < *count {
            return *class;
        }
        pick -= count;
    }
    rows.last().expect("non-empty weights").1
}

/// Maps a recorded base age onto a digest the daemon actually retains:
/// `history` is newest-first, so age 1 is the freshest diffable base;
/// older ages clamp to the oldest retained base (beyond the window the
/// daemon answers with a full document, exactly as the table model
/// charges it).
fn base_for_age(history: &[Digest32], age: u64) -> Option<Digest32> {
    if history.len() < 2 {
        return None;
    }
    let index = (age.max(1) as usize).min(history.len() - 1);
    Some(history[index])
}

fn request_for(class: ReqClass, history: &[Digest32]) -> DocRequest {
    match class {
        ReqClass::ConsensusFull => DocRequest::Consensus { base: None },
        ReqClass::DescriptorsFull => DocRequest::Descriptors { base: None },
        ReqClass::ConsensusRefresh(age) => DocRequest::Consensus {
            base: base_for_age(history, age),
        },
        ReqClass::DescriptorsDelta(age) => DocRequest::Descriptors {
            base: base_for_age(history, age),
        },
        ReqClass::Probe => DocRequest::Status,
    }
}

/// One complete request/response exchange.
struct Exchange {
    status: u16,
    served: String,
    body_len: usize,
}

fn execute(addr: &SocketAddr, request: &DocRequest, timeout: Duration) -> Option<Exchange> {
    let mut stream = TcpStream::connect_timeout(addr, timeout).ok()?;
    stream.set_read_timeout(Some(timeout)).ok()?;
    stream.set_write_timeout(Some(timeout)).ok()?;
    stream.write_all(request.encode().as_bytes()).ok()?;

    let mut buf = Vec::with_capacity(4_096);
    let mut chunk = [0u8; 8_192];
    let head = loop {
        if let Some(head) = parse_response_head(&buf) {
            break head;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return None,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => return None,
        }
    };
    let want = head.body_start + head.content_length;
    while buf.len() < want {
        match stream.read(&mut chunk) {
            Ok(0) => return None,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => return None,
        }
    }
    Some(Exchange {
        status: head.status,
        served: head.served,
        body_len: head.content_length,
    })
}

/// Samples a Tor-weighted client region.
fn sample_region(rng: &mut StdRng) -> Region {
    let total: f64 = CLIENT_WEIGHTS.iter().sum();
    let mut pick = rng.gen_range(0.0..total);
    for (region, weight) in REGIONS.iter().zip(CLIENT_WEIGHTS) {
        if pick < weight {
            return *region;
        }
        pick -= weight;
    }
    REGIONS[3]
}

/// Fetches the daemon's retained-digest index (`None` when unreachable).
pub fn fetch_history(addr: &SocketAddr, timeout: Duration) -> Option<Vec<Digest32>> {
    let mut stream = TcpStream::connect_timeout(addr, timeout).ok()?;
    stream.set_read_timeout(Some(timeout)).ok()?;
    stream
        .write_all(DocRequest::Digests.encode().as_bytes())
        .ok()?;
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).ok()?;
    let head = parse_response_head(&buf)?;
    if head.status != 200 {
        return None;
    }
    let body = std::str::from_utf8(&buf[head.body_start..]).ok()?;
    let mut history = Vec::new();
    for line in body.lines() {
        let hex = line.strip_prefix("digest ")?.split_whitespace().next()?;
        history.push(Digest32::from_hex(hex)?);
    }
    Some(history)
}

/// Runs the replay: resolves the daemon, fetches its digest index to
/// aim refreshes, then drives `connections` workers through the
/// open-loop schedule. Returns the merged report.
pub fn run(config: &LoadConfig, mix: &FetchMix) -> Result<LoadReport, String> {
    run_with_registry(config, mix, &Registry::new())
}

/// [`run`], publishing the merged outcome into a caller-supplied obs
/// [`Registry`] (counters plus the [`LATENCY_METRIC`] histogram) so the
/// run's metrics live alongside whatever else the harness collects.
pub fn run_with_registry(
    config: &LoadConfig,
    mix: &FetchMix,
    registry: &Registry,
) -> Result<LoadReport, String> {
    let addr: SocketAddr = config
        .addr
        .to_socket_addrs()
        .map_err(|e| format!("resolve {}: {e}", config.addr))?
        .next()
        .ok_or_else(|| format!("resolve {}: no address", config.addr))?;
    let history = fetch_history(&addr, config.timeout)
        .ok_or_else(|| format!("fetch digest index from {addr}: daemon unreachable"))?;
    let rows = class_weights(mix);
    if rows.is_empty() {
        return Err("fetch mix is empty (no bootstraps, refreshes or probes)".to_string());
    }

    let total = (config.rate * config.duration.as_secs_f64()).ceil() as u64;
    let workers = config.connections.max(1) as u64;
    let start = Instant::now();

    let mut report = LoadReport::default();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for worker in 0..workers {
            let rows = &rows;
            let history = &history;
            let config_ref = config;
            handles.push(scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(config_ref.seed.wrapping_add(worker));
                let mut local = LoadReport::default();
                let mut k = worker;
                while k < total {
                    let due = start + Duration::from_secs_f64(k as f64 / config_ref.rate);
                    let now = Instant::now();
                    if due > now {
                        std::thread::sleep(due - now);
                    }
                    let class = sample_class(rows, &mut rng);
                    let geo_delay = if config_ref.geo {
                        let client = sample_region(&mut rng);
                        midpoint_ms(client, config_ref.cache_region) / 1_000.0
                    } else {
                        0.0
                    };
                    if geo_delay > 0.0 {
                        std::thread::sleep(Duration::from_secs_f64(geo_delay));
                    }
                    match class {
                        ReqClass::ConsensusFull => local.bootstrap_fulls += 1,
                        ReqClass::ConsensusRefresh(_) => local.refresh_requests += 1,
                        ReqClass::DescriptorsFull | ReqClass::DescriptorsDelta(_) => {
                            local.descriptor_requests += 1
                        }
                        ReqClass::Probe => local.probes += 1,
                    }
                    let request = request_for(class, history);
                    let begin = Instant::now();
                    local.sent += 1;
                    match execute(&addr, &request, config_ref.timeout) {
                        Some(exchange) => {
                            let elapsed = begin.elapsed().as_secs_f64() + geo_delay;
                            local.latency.observe(elapsed);
                            if exchange.status == 503 {
                                local.shed += 1;
                            } else {
                                local.completed += 1;
                                local.payload_bytes += exchange.body_len as u64;
                                if matches!(class, ReqClass::ConsensusRefresh(_))
                                    && exchange.served == "diff"
                                {
                                    local.diff_hits += 1;
                                }
                            }
                        }
                        None => local.failed += 1,
                    }
                    k += workers;
                }
                local
            }));
        }
        for handle in handles {
            if let Ok(local) = handle.join() {
                report.merge(&local);
            }
        }
    });
    report.wall_secs = start.elapsed().as_secs_f64();
    report.publish_metrics(registry);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthesized_mix_carries_every_class() {
        let mix = synthesize_mix(7);
        assert!(mix.bootstrap_count() > 0, "recovery storm bootstraps");
        assert!(mix.refresh_count() > 0, "steady refresh traffic");
        assert!(mix.failed_probes > 0, "failed-hour probe storm");
        assert!(
            mix.refreshes.iter().any(|r| r.consensus_is_diff),
            "some refreshes must be diff-served"
        );
    }

    #[test]
    fn class_sampling_respects_weights_and_ages_clamp() {
        let mix = synthesize_mix(7);
        let rows = class_weights(&mix);
        assert!(rows.iter().all(|(count, _)| *count > 0));
        let mut rng = StdRng::seed_from_u64(1);
        let mut saw_probe = false;
        let mut saw_refresh = false;
        for _ in 0..2_000 {
            match sample_class(&rows, &mut rng) {
                ReqClass::Probe => saw_probe = true,
                ReqClass::ConsensusRefresh(_) => saw_refresh = true,
                _ => {}
            }
        }
        assert!(saw_probe && saw_refresh);

        let history: Vec<Digest32> = (0..3u8)
            .map(|i| partialtor_crypto::sha256::digest(&[i]))
            .collect();
        assert_eq!(base_for_age(&history, 0), Some(history[1]));
        assert_eq!(base_for_age(&history, 1), Some(history[1]));
        assert_eq!(base_for_age(&history, 99), Some(history[2]));
        assert_eq!(base_for_age(&history[..1], 1), None);
    }

    #[test]
    fn budget_check_uses_the_sessions_assumed_budget() {
        let report = LoadReport {
            payload_bytes: 1_000_000,
            wall_secs: 2.0,
            ..LoadReport::default()
        };
        let check = budget_check(&report);
        assert_eq!(
            check.assumed_bytes_per_hour,
            per_cache_service_budget_bytes(CacheSimConfig::default().cache_bps, 0.0)
        );
        let expected = 500_000.0 * 3_600.0 / check.assumed_bytes_per_hour as f64;
        assert!((check.ratio - expected).abs() < 1e-9);
        assert!(check.ratio.is_finite() && check.ratio > 0.0);
    }

    #[test]
    fn report_json_is_well_formed() {
        let mut report = LoadReport::default();
        report.latency.observe(0.010);
        report.completed = 1;
        report.wall_secs = 1.0;
        let json = report.to_json(Some(&budget_check(&report)));
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"budget\""));
        assert!(json.contains("\"p999_secs\""));
        assert!(!json.contains("inf") && !json.contains("NaN"));
    }

    #[test]
    fn publish_metrics_merges_into_the_shared_registry() {
        let mut report = LoadReport::default();
        for i in 0..1_000 {
            report.latency.observe(0.001 * (1 + i % 10) as f64);
        }
        report.sent = 1_000;
        report.completed = 990;
        report.failed = 8;
        report.shed = 2;

        let registry = Registry::new();
        registry.inc("dirload.sent", 5); // pre-existing runs accumulate
        report.publish_metrics(&registry);

        assert_eq!(registry.counter("dirload.sent"), 1_005);
        assert_eq!(registry.counter("dirload.completed"), 990);
        let merged = registry.histogram(LATENCY_METRIC);
        assert_eq!(merged.count(), report.latency.count());
        assert_eq!(merged.p999(), report.latency.p999());
        assert!(report.latency.p999() >= report.latency.p50());
    }
}
