//! `dirload` — replay a session hour's fetch mix against a daemon.
//!
//! Loads a `FetchMix` (from a `dirsim clients --fetch-mix` export, or
//! synthesized from a small feedback-on session by default), replays it
//! open-loop at `--rate`, and reports achieved throughput, latency
//! percentiles (p50/p90/p99/p99.9, read back from the shared obs
//! registry the run publishes into) and the diff hit rate.
//! `--budget-check` scales the
//! measured payload rate to an hour and prints the ratio against the
//! per-cache service budget the simulation assumes. `--metrics FILE`
//! writes the report as JSON for machines (CI) to parse.

use partialtor_dircached::loadgen;
use partialtor_dircached::{budget_check, synthesize_mix, LoadConfig, LoadReport, LATENCY_METRIC};
use partialtor_dirdist::FetchMix;
use partialtor_obs::{Histogram, Registry};
use partialtor_simnet::geo::Region;
use std::time::Duration;

const USAGE: &str = "\
usage: dirload --addr HOST:PORT [options]

Replay a distribution-session fetch mix against a dircached daemon.

options:
  --addr HOST:PORT   daemon address (required)
  --duration SECS    how long to replay (default 2)
  --rate N           open-loop request rate per second (default 200)
  --connections N    concurrent client workers (default 4)
  --timeout SECS     per-request timeout (default 5)
  --mix FILE         fetchmix export to replay (default: synthesized)
  --hour N           pick this hour from the mix file (default: busiest)
  --geo              pay geo-model midpoint latency per request
  --cache-region R   cache region for --geo (default europe)
  --seed N           sampler seed (default 7)
  --budget-check     print measured vs assumed per-cache service budget
  --metrics FILE     write the report as JSON to FILE
  --json             print the JSON report to stdout instead of the table
  --help             this text
";

struct Args {
    load: LoadConfig,
    mix_file: Option<String>,
    hour: Option<u64>,
    budget: bool,
    metrics: Option<String>,
    json: bool,
}

fn parse<T: std::str::FromStr>(value: &str, flag: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("{flag}: cannot parse {value:?}"))
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        load: LoadConfig::default(),
        mix_file: None,
        hour: None,
        budget: false,
        metrics: None,
        json: false,
    };
    let mut saw_addr = false;
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        if flag == "--help" {
            print!("{USAGE}");
            std::process::exit(0);
        }
        let mut value = |flag: &str| argv.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--addr" => {
                args.load.addr = value("--addr")?;
                saw_addr = true;
            }
            "--duration" => {
                args.load.duration =
                    Duration::from_secs_f64(parse(&value("--duration")?, "--duration")?)
            }
            "--rate" => args.load.rate = parse(&value("--rate")?, "--rate")?,
            "--connections" => {
                args.load.connections = parse(&value("--connections")?, "--connections")?
            }
            "--timeout" => {
                args.load.timeout =
                    Duration::from_secs_f64(parse(&value("--timeout")?, "--timeout")?)
            }
            "--mix" => args.mix_file = Some(value("--mix")?),
            "--hour" => args.hour = Some(parse(&value("--hour")?, "--hour")?),
            "--geo" => args.load.geo = true,
            "--cache-region" => {
                let label = value("--cache-region")?;
                args.load.cache_region = Region::from_label(&label)
                    .ok_or_else(|| format!("--cache-region: unknown region {label:?}"))?;
            }
            "--seed" => args.load.seed = parse(&value("--seed")?, "--seed")?,
            "--budget-check" => args.budget = true,
            "--metrics" => args.metrics = Some(value("--metrics")?),
            "--json" => args.json = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if !saw_addr {
        return Err("--addr is required".to_string());
    }
    if args.load.rate <= 0.0 {
        return Err("--rate must be positive".to_string());
    }
    Ok(args)
}

fn load_mix(args: &Args) -> Result<FetchMix, String> {
    let Some(path) = &args.mix_file else {
        return Ok(synthesize_mix(args.load.seed));
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let mixes = FetchMix::parse_all(&text)?;
    match args.hour {
        Some(hour) => mixes
            .iter()
            .find(|m| m.hour == hour)
            .cloned()
            .ok_or_else(|| format!("{path}: no mix for hour {hour}")),
        None => FetchMix::busiest(&mixes)
            .cloned()
            .ok_or_else(|| format!("{path}: no mixes in file")),
    }
}

fn render_table(
    report: &LoadReport,
    latency: &Histogram,
    budget: Option<&partialtor_dircached::BudgetCheck>,
) {
    fn ms(v: Option<f64>) -> String {
        v.map_or_else(|| "-".to_string(), |s| format!("{:.2}", s * 1_000.0))
    }
    println!("dirload report");
    println!(
        "  requests     sent={} completed={} failed={} shed={}",
        report.sent, report.completed, report.failed, report.shed
    );
    println!(
        "  mix          bootstrap_fulls={} refreshes={} descriptors={} probes={}",
        report.bootstrap_fulls, report.refresh_requests, report.descriptor_requests, report.probes
    );
    println!(
        "  diffs        hits={} rate={:.1}%",
        report.diff_hits,
        report.diff_hit_rate() * 100.0
    );
    println!(
        "  throughput   {:.1} req/s, {:.1} KiB/s payload over {:.2}s",
        report.achieved_rps(),
        report.payload_bytes as f64 / report.wall_secs.max(1e-9) / 1_024.0,
        report.wall_secs
    );
    println!(
        "  latency ms   p50={} p90={} p99={} p99.9={} (n={})",
        ms(latency.p50()),
        ms(latency.p90()),
        ms(latency.p99()),
        ms(latency.p999()),
        latency.count()
    );
    if let Some(check) = budget {
        println!(
            "  budget       measured={:.2e} B/h assumed={:.2e} B/h ratio={:.3}",
            check.measured_bytes_per_hour, check.assumed_bytes_per_hour as f64, check.ratio
        );
    }
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(error) => {
            eprintln!("dirload: {error}\n{USAGE}");
            std::process::exit(2);
        }
    };
    let mix = match load_mix(&args) {
        Ok(mix) => mix,
        Err(error) => {
            eprintln!("dirload: {error}");
            std::process::exit(1);
        }
    };
    // The run publishes into a shared obs registry; the table reads the
    // latency percentiles back out of it, so the numbers printed are the
    // registry's merged histogram, not a private side copy.
    let registry = Registry::new();
    let report = match loadgen::run_with_registry(&args.load, &mix, &registry) {
        Ok(report) => report,
        Err(error) => {
            eprintln!("dirload: {error}");
            std::process::exit(1);
        }
    };
    let latency = registry.histogram(LATENCY_METRIC);
    let budget = args.budget.then(|| budget_check(&report));
    let json = report.to_json(budget.as_ref());
    if let Some(path) = &args.metrics {
        if let Err(error) = std::fs::write(path, &json) {
            eprintln!("dirload: write {path}: {error}");
            std::process::exit(1);
        }
    }
    if args.json {
        println!("{json}");
    } else {
        render_table(&report, &latency, budget.as_ref());
    }
}
