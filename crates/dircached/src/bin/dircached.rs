//! `dircached` — run the directory-cache daemon standalone.
//!
//! Builds a deterministic consensus series, publishes it into a
//! [`ServingStore`], and serves it until `--serve-secs` elapses (or
//! forever with `--serve-secs 0`). With `--publish-every N` the series
//! is published incrementally while serving, so clients see live
//! document churn. Prints `dircached listening on <addr>` once bound —
//! CI captures the ephemeral port from that line.

use partialtor_dircached::{consensus_series, Daemon, DaemonConfig, DocSetConfig, ServingStore};
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "\
usage: dircached [options]

Serve a deterministic consensus series over TCP.

options:
  --addr HOST:PORT     bind address (default 127.0.0.1:0 = ephemeral)
  --relays N           relays per document (default 500)
  --history N          documents in the series (default 4)
  --churn N            relays churned per hour (default 10)
  --retain N           diff bases retained (default 3)
  --seed N             population seed (default 7)
  --workers N          worker threads, 0 = per core (default 0)
  --max-pending N      accept queue depth before shedding 503s (default 64)
  --publish-every SECS publish the next document every SECS while serving
                       (default 0 = publish the whole series up front)
  --serve-secs SECS    exit after SECS; 0 = serve forever (default 0)
  --help               this text
";

struct Args {
    addr: String,
    relays: usize,
    history: usize,
    churn: usize,
    retain: usize,
    seed: u64,
    workers: usize,
    max_pending: usize,
    publish_every: f64,
    serve_secs: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:0".to_string(),
        relays: 500,
        history: 4,
        churn: 10,
        retain: 3,
        seed: 7,
        workers: 0,
        max_pending: 64,
        publish_every: 0.0,
        serve_secs: 0.0,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        if flag == "--help" {
            print!("{USAGE}");
            std::process::exit(0);
        }
        let mut value = |flag: &str| argv.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--relays" => args.relays = parse(&value("--relays")?, "--relays")?,
            "--history" => args.history = parse(&value("--history")?, "--history")?,
            "--churn" => args.churn = parse(&value("--churn")?, "--churn")?,
            "--retain" => args.retain = parse(&value("--retain")?, "--retain")?,
            "--seed" => args.seed = parse(&value("--seed")?, "--seed")?,
            "--workers" => args.workers = parse(&value("--workers")?, "--workers")?,
            "--max-pending" => args.max_pending = parse(&value("--max-pending")?, "--max-pending")?,
            "--publish-every" => {
                args.publish_every = parse(&value("--publish-every")?, "--publish-every")?
            }
            "--serve-secs" => args.serve_secs = parse(&value("--serve-secs")?, "--serve-secs")?,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.history == 0 {
        return Err("--history must be at least 1".to_string());
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(value: &str, flag: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("{flag}: cannot parse {value:?}"))
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(error) => {
            eprintln!("dircached: {error}\n{USAGE}");
            std::process::exit(2);
        }
    };

    let docs = consensus_series(&DocSetConfig {
        seed: args.seed,
        relays: args.relays,
        history: args.history,
        churn_per_hour: args.churn,
    });
    let store = Arc::new(ServingStore::new(args.retain));

    // Publish everything up front, or hold documents back for the
    // incremental-publish loop below.
    let up_front = if args.publish_every > 0.0 {
        1
    } else {
        docs.len()
    };
    for doc in &docs[..up_front] {
        store.publish(doc.clone());
    }

    let daemon = match Daemon::start(
        DaemonConfig {
            addr: args.addr.clone(),
            workers: args.workers,
            max_pending: args.max_pending,
            ..DaemonConfig::default()
        },
        store.clone(),
    ) {
        Ok(daemon) => daemon,
        Err(error) => {
            eprintln!("dircached: bind {}: {error}", args.addr);
            std::process::exit(1);
        }
    };
    println!("dircached listening on {}", daemon.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    let started = std::time::Instant::now();
    let mut published = up_front;
    loop {
        let step = if args.publish_every > 0.0 && published < docs.len() {
            args.publish_every
        } else if args.serve_secs > 0.0 {
            0.25
        } else {
            // Nothing left to publish and no deadline: park forever.
            std::thread::park();
            continue;
        };
        std::thread::sleep(Duration::from_secs_f64(step));
        if args.publish_every > 0.0 && published < docs.len() {
            store.publish(docs[published].clone());
            published += 1;
        }
        if args.serve_secs > 0.0 && started.elapsed().as_secs_f64() >= args.serve_secs {
            break;
        }
    }
    drop(daemon);
}
