//! Property-based tests of the proposal-140 consensus diff: for any pair
//! of consensus documents — overlapping, disjoint, or empty relay sets —
//! `compute(from, to)` followed by `apply(from)` reconstructs `to`
//! exactly, and the wire encoding round-trips.

use partialtor_tordoc::prelude::*;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Builds a consensus whose entries are the masked subset of
/// `population`, with `bump`-masked relays mutated (property churn).
fn consensus_from(
    population: &[RelayInfo],
    mask: &[bool],
    bump: &[bool],
    valid_after: u64,
) -> Consensus {
    let entries: BTreeMap<RelayId, ConsensusEntry> = population
        .iter()
        .enumerate()
        .filter(|(i, _)| mask.get(*i).copied().unwrap_or(false))
        .map(|(i, info)| {
            let mut entry = ConsensusEntry {
                id: info.id,
                nickname: info.nickname.clone(),
                address: info.address,
                or_port: info.or_port,
                dir_port: info.dir_port,
                flags: info.flags,
                version: info.version,
                protocols: info.protocols.clone(),
                exit_policy: info.exit_policy.clone(),
                bandwidth: info.bandwidth,
            };
            if bump.get(i).copied().unwrap_or(false) {
                entry.bandwidth = Some(entry.bandwidth.unwrap_or(0) + 1);
            }
            (entry.id, entry)
        })
        .collect();
    Consensus {
        meta: ConsensusMeta {
            valid_after,
            fresh_until: valid_after + 3_600,
            valid_until: valid_after + 3 * 3_600,
        },
        entries: entries.into_values().collect(),
        signatures: Vec::new(),
    }
}

/// Asserts the full round trip: compute → apply reconstructs the target,
/// and the canonical encoding parses back to the same diff.
fn assert_roundtrip(from: &Consensus, to: &Consensus) {
    let diff = ConsensusDiff::compute(from, to);
    let rebuilt = diff.apply(from).expect("diff applies to its own base");
    assert_eq!(rebuilt.digest(), to.digest(), "digest mismatch");
    assert_eq!(rebuilt.entries, to.entries, "entry mismatch");
    assert_eq!(rebuilt.meta, to.meta, "meta mismatch");

    let reparsed = ConsensusDiff::parse(&diff.encode()).expect("encoding parses");
    assert_eq!(reparsed, diff, "encode/parse round trip");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random overlapping subsets with random property churn.
    #[test]
    fn compute_apply_reconstructs_random_pairs(
        seed in 0u64..10_000,
        count in 1usize..48,
        from_mask in proptest::collection::vec(any::<bool>(), 48),
        to_mask in proptest::collection::vec(any::<bool>(), 48),
        bump in proptest::collection::vec(any::<bool>(), 48),
    ) {
        let population = generate_population(&PopulationConfig { seed, count });
        let from = consensus_from(&population, &from_mask, &[], 3_600);
        let to = consensus_from(&population, &to_mask, &bump, 7_200);
        assert_roundtrip(&from, &to);
    }

    /// Fully disjoint relay sets: everything removed, everything added.
    #[test]
    fn disjoint_sets_roundtrip(
        seed in 0u64..10_000,
        count in 2usize..48,
        split in any::<proptest::sample::Index>(),
    ) {
        let population = generate_population(&PopulationConfig { seed, count });
        let pivot = 1 + split.index(count - 1);
        let from_mask: Vec<bool> = (0..count).map(|i| i < pivot).collect();
        let to_mask: Vec<bool> = (0..count).map(|i| i >= pivot).collect();
        let from = consensus_from(&population, &from_mask, &[], 3_600);
        let to = consensus_from(&population, &to_mask, &[], 7_200);
        prop_assert!(from.entries.iter().all(|e| to.entries.iter().all(|f| e.id != f.id)));
        let diff = ConsensusDiff::compute(&from, &to);
        prop_assert_eq!(diff.removed.len(), from.entries.len());
        prop_assert_eq!(diff.upserts.len(), to.entries.len());
        assert_roundtrip(&from, &to);
    }

    /// Empty documents on either or both sides.
    #[test]
    fn empty_sets_roundtrip(seed in 0u64..10_000, count in 1usize..32) {
        let population = generate_population(&PopulationConfig { seed, count });
        let all = vec![true; count];
        let none = vec![false; count];
        let full = consensus_from(&population, &all, &[], 3_600);
        let empty_old = consensus_from(&population, &none, &[], 3_600);
        let empty_new = consensus_from(&population, &none, &[], 7_200);

        // Empty → populated (a bootstrap-shaped diff).
        assert_roundtrip(&empty_old, &full);
        // Populated → empty (the whole network vanished).
        assert_roundtrip(&full, &empty_new);
        // Empty → empty (only the metadata moves).
        assert_roundtrip(&empty_old, &empty_new);
    }

    /// Identity churn: same relay set, only properties change.
    #[test]
    fn property_only_churn_is_upserts_only(
        seed in 0u64..10_000,
        count in 1usize..40,
        bump in proptest::collection::vec(any::<bool>(), 40),
    ) {
        let population = generate_population(&PopulationConfig { seed, count });
        let all = vec![true; count];
        let from = consensus_from(&population, &all, &[], 3_600);
        let to = consensus_from(&population, &all, &bump, 7_200);
        let diff = ConsensusDiff::compute(&from, &to);
        prop_assert!(diff.removed.is_empty(), "no relay left the network");
        let bumped = (0..count).filter(|&i| bump.get(i).copied().unwrap_or(false)).count();
        prop_assert_eq!(diff.upserts.len(), bumped);
        assert_roundtrip(&from, &to);
    }
}
