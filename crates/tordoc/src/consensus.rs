//! Consensus documents and the Fig. 2 aggregation algorithm.
//!
//! > The relay is included in the consensus document if it appears in at
//! > least t ≥ ⌊n/2⌋ votes. If the relay is included, its name is
//! > determined by the vote with the largest authority ID. Its properties
//! > are determined by the popular vote, with ties broken by: each flag is
//! > not set in case of a tie; the largest version and/or protocol is
//! > selected; the lexicographically larger exit policy summary is
//! > selected. Additionally, the relay's bandwidth is set to the median of
//! > all votes that measure them.   — Fig. 2 of the paper

use crate::authority::AuthorityId;
use crate::relay::{ExitPolicySummary, RelayFlags, RelayId, RelayInfo, TorVersion, FLAG_TABLE};
use crate::vote::{parse_entries, parse_u64, DocError, Vote};
use partialtor_crypto::{hex, sha256, Digest32, Signature, SigningKey, VerifyingKey};
use std::collections::BTreeMap;

/// Header metadata of a consensus document.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConsensusMeta {
    /// Start of the validity interval.
    pub valid_after: u64,
    /// Stale time (1 h).
    pub fresh_until: u64,
    /// Invalid time (3 h) — the "three hours" that make consecutive
    /// failures fatal for the whole network (§2.1 of the paper).
    pub valid_until: u64,
}

/// One relay's aggregated entry in the consensus.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConsensusEntry {
    /// Identity.
    pub id: RelayId,
    /// Nickname (from the vote with the largest authority id).
    pub nickname: String,
    /// Address (same source as nickname).
    pub address: [u8; 4],
    /// OR port.
    pub or_port: u16,
    /// Dir port.
    pub dir_port: u16,
    /// Majority flags.
    pub flags: RelayFlags,
    /// Popular-vote version.
    pub version: TorVersion,
    /// Popular-vote protocol line.
    pub protocols: String,
    /// Popular-vote exit policy.
    pub exit_policy: ExitPolicySummary,
    /// Median measured bandwidth (kB/s), if anyone measured it.
    pub bandwidth: Option<u32>,
}

/// A consensus document with its accumulated signatures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Consensus {
    /// Header metadata.
    pub meta: ConsensusMeta,
    /// Aggregated entries, sorted by relay identity.
    pub entries: Vec<ConsensusEntry>,
    /// Collected `(authority, signature)` pairs over [`Consensus::digest`].
    pub signatures: Vec<(AuthorityId, Signature)>,
}

impl Consensus {
    /// Encodes the signed body (everything except the signature lines).
    pub fn encode_body(&self) -> String {
        let mut out = String::with_capacity(128 + self.entries.len() * 300);
        out.push_str("network-status-version 3\n");
        out.push_str("vote-status consensus\n");
        out.push_str("consensus-method 28\n");
        out.push_str(&format!("valid-after {}\n", self.meta.valid_after));
        out.push_str(&format!("fresh-until {}\n", self.meta.fresh_until));
        out.push_str(&format!("valid-until {}\n", self.meta.valid_until));
        out.push_str("known-flags Authority BadExit Exit Fast Guard HSDir MiddleOnly Running Stable StaleDesc V2Dir Valid\n");
        for e in &self.entries {
            let info = RelayInfo {
                id: e.id,
                nickname: e.nickname.clone(),
                address: e.address,
                or_port: e.or_port,
                dir_port: e.dir_port,
                flags: e.flags,
                version: e.version,
                protocols: e.protocols.clone(),
                exit_policy: e.exit_policy.clone(),
                bandwidth: e.bandwidth,
                descriptor_digest: Digest32::default(),
            };
            crate::vote::encode_relay(&mut out, &info, false);
        }
        out.push_str("directory-footer\n");
        out
    }

    /// Encodes the body plus `directory-signature` lines.
    pub fn encode(&self) -> String {
        let mut out = self.encode_body();
        for (auth, sig) in &self.signatures {
            out.push_str(&format!(
                "directory-signature {} {}\n",
                auth.0,
                hex::encode(&sig.to_bytes())
            ));
        }
        out
    }

    /// Digest of the signed body.
    pub fn digest(&self) -> Digest32 {
        sha256::digest(self.encode_body().as_bytes())
    }

    /// Signs the consensus with an authority key and appends the signature.
    pub fn sign(&mut self, authority: AuthorityId, key: &SigningKey) {
        let sig = key.sign(self.digest().as_bytes());
        self.signatures.push((authority, sig));
    }

    /// Counts the signatures that verify under the given keys (indexed by
    /// authority id). Duplicate authorities count once.
    pub fn valid_signatures(&self, keys: &[VerifyingKey]) -> usize {
        let digest = self.digest();
        let mut seen = std::collections::BTreeSet::new();
        for (auth, sig) in &self.signatures {
            if auth.index() < keys.len()
                && !seen.contains(auth)
                && keys[auth.index()].verify(digest.as_bytes(), sig).is_ok()
            {
                seen.insert(*auth);
            }
        }
        seen.len()
    }

    /// Whether the document carries signatures from a majority of `n`
    /// authorities — Tor's validity rule for consensus documents.
    pub fn is_valid(&self, keys: &[VerifyingKey], n: usize) -> bool {
        self.valid_signatures(keys) > n / 2
    }

    /// Wire size of the full encoding in bytes.
    pub fn wire_size(&self) -> u64 {
        self.encode().len() as u64
    }

    /// Parses a consensus encoding (body and signature lines).
    pub fn parse(text: &str) -> Result<Consensus, DocError> {
        let mut lines = text.lines().enumerate().peekable();
        let mut valid_after = None;
        let mut fresh_until = None;
        let mut valid_until = None;

        for (idx, line) in lines.by_ref() {
            let ln = idx + 1;
            if line.starts_with("known-flags ") {
                break;
            }
            if let Some(rest) = line.strip_prefix("valid-after ") {
                valid_after = Some(parse_u64(rest, ln)?);
            } else if let Some(rest) = line.strip_prefix("fresh-until ") {
                fresh_until = Some(parse_u64(rest, ln)?);
            } else if let Some(rest) = line.strip_prefix("valid-until ") {
                valid_until = Some(parse_u64(rest, ln)?);
            } else if line.starts_with("network-status-version")
                || line.starts_with("vote-status")
                || line.starts_with("consensus-method")
            {
                // Fixed header lines.
            } else {
                return Err(DocError::new(ln, format!("unexpected header line: {line}")));
            }
        }

        let meta = ConsensusMeta {
            valid_after: valid_after.ok_or_else(|| DocError::new(0, "missing valid-after"))?,
            fresh_until: fresh_until.ok_or_else(|| DocError::new(0, "missing fresh-until"))?,
            valid_until: valid_until.ok_or_else(|| DocError::new(0, "missing valid-until"))?,
        };

        let infos = parse_entries(&mut lines, false)?;
        let entries = infos
            .into_iter()
            .map(|i| ConsensusEntry {
                id: i.id,
                nickname: i.nickname,
                address: i.address,
                or_port: i.or_port,
                dir_port: i.dir_port,
                flags: i.flags,
                version: i.version,
                protocols: i.protocols,
                exit_policy: i.exit_policy,
                bandwidth: i.bandwidth,
            })
            .collect();

        let mut signatures = Vec::new();
        for (idx, line) in lines {
            let ln = idx + 1;
            if let Some(rest) = line.strip_prefix("directory-signature ") {
                let (id_str, sig_hex) = rest
                    .split_once(' ')
                    .ok_or_else(|| DocError::new(ln, "signature line needs 2 fields"))?;
                let id: u8 = id_str
                    .parse()
                    .map_err(|_| DocError::new(ln, "bad authority id"))?;
                let bytes = hex::decode_array::<64>(sig_hex)
                    .ok_or_else(|| DocError::new(ln, "bad signature hex"))?;
                signatures.push((AuthorityId(id), Signature::from_bytes(&bytes)));
            } else {
                return Err(DocError::new(
                    ln,
                    format!("unexpected trailer line: {line}"),
                ));
            }
        }

        Ok(Consensus {
            meta,
            entries,
            signatures,
        })
    }
}

/// Aggregates votes into a consensus, per the Fig. 2 rules.
///
/// The inclusion threshold is a strict majority of the votes aggregated
/// (`votes.len() / 2 + 1`); under the paper's robustness assumption this
/// keeps correct inputs decisive whenever they outnumber faulty ones.
///
/// # Panics
///
/// Panics if `votes` is empty — callers always hold at least their own
/// vote.
pub fn aggregate(votes: &[&Vote]) -> Consensus {
    assert!(!votes.is_empty(), "cannot aggregate zero votes");
    let inclusion_threshold = votes.len() / 2 + 1;

    // Meta comes from the (deterministic) median valid-after across votes,
    // so a single skewed clock cannot shift the consensus interval.
    let mut valid_afters: Vec<u64> = votes.iter().map(|v| v.meta.valid_after).collect();
    valid_afters.sort_unstable();
    let valid_after = valid_afters[(valid_afters.len() - 1) / 2];
    let meta = ConsensusMeta {
        valid_after,
        fresh_until: valid_after + 3600,
        valid_until: valid_after + 3 * 3600,
    };

    // Index: relay id → (authority id, entry) for every vote listing it.
    let mut listings: BTreeMap<RelayId, Vec<(AuthorityId, &RelayInfo)>> = BTreeMap::new();
    for vote in votes {
        for entry in vote.entries() {
            listings
                .entry(entry.id)
                .or_default()
                .push((vote.meta.authority, entry));
        }
    }

    let entries = listings
        .into_iter()
        .filter(|(_, listed)| listed.len() >= inclusion_threshold)
        .map(|(id, listed)| aggregate_relay(id, &listed))
        .collect();

    Consensus {
        meta,
        entries,
        signatures: Vec::new(),
    }
}

fn aggregate_relay(id: RelayId, listed: &[(AuthorityId, &RelayInfo)]) -> ConsensusEntry {
    // Name (and address/ports, which travel with it) from the vote with the
    // largest authority id.
    let (_, name_source) = listed
        .iter()
        .max_by_key(|(auth, _)| *auth)
        .expect("listed is non-empty");

    // Flags: set iff strictly more than half of the listing votes set it
    // ("each flag is not set in case of a tie").
    let mut flags = RelayFlags::NONE;
    for (bit, _) in FLAG_TABLE {
        let flag = RelayFlags::from_bits(bit);
        let count = listed
            .iter()
            .filter(|(_, e)| e.flags.contains(flag))
            .count();
        if count * 2 > listed.len() {
            flags.insert(flag);
        }
    }

    let version = *plurality(listed.iter().map(|(_, e)| &e.version));
    let protocols = plurality(listed.iter().map(|(_, e)| &e.protocols)).clone();
    let exit_policy = plurality(listed.iter().map(|(_, e)| &e.exit_policy)).clone();

    // Median of the measured bandwidths (low median for even counts,
    // matching Tor's median-of-measurements behaviour).
    let mut measured: Vec<u32> = listed.iter().filter_map(|(_, e)| e.bandwidth).collect();
    measured.sort_unstable();
    let bandwidth = if measured.is_empty() {
        None
    } else {
        Some(measured[(measured.len() - 1) / 2])
    };

    ConsensusEntry {
        id,
        nickname: name_source.nickname.clone(),
        address: name_source.address,
        or_port: name_source.or_port,
        dir_port: name_source.dir_port,
        flags,
        version,
        protocols,
        exit_policy,
        bandwidth,
    }
}

/// Returns the most common value; ties select the largest value
/// (the Fig. 2 tie-break for versions, protocols and exit policies).
fn plurality<'a, T: Ord, I: Iterator<Item = &'a T>>(items: I) -> &'a T {
    let mut counts: BTreeMap<&'a T, usize> = BTreeMap::new();
    for item in items {
        *counts.entry(item).or_insert(0) += 1;
    }
    // Max by (count, value): BTreeMap iteration is value-ascending, so the
    // last maximum is the largest value among tied counts.
    let mut best: Option<(&'a T, usize)> = None;
    for (value, count) in counts {
        match best {
            Some((_, best_count)) if count < best_count => {}
            _ => best = Some((value, count)),
        }
    }
    best.expect("non-empty iterator").0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authority::AuthoritySet;
    use crate::generator::{authority_view, generate_population, PopulationConfig, ViewConfig};
    use crate::vote::VoteMeta;

    fn make_votes(seed: u64, relays: usize, authorities: usize) -> Vec<Vote> {
        let pop = generate_population(&PopulationConfig {
            seed,
            count: relays,
        });
        (0..authorities)
            .map(|i| {
                let auth = AuthorityId(i as u8);
                let config = ViewConfig {
                    // Three of nine authorities run bandwidth scanners.
                    measures_bandwidth: i % 3 == 0,
                    ..ViewConfig::default()
                };
                let view = authority_view(&pop, auth, seed, &config);
                Vote::new(
                    VoteMeta::standard(auth, &format!("auth{i}"), "AA".repeat(20), 3600),
                    view,
                )
            })
            .collect()
    }

    #[test]
    fn aggregation_is_deterministic_and_order_independent() {
        let votes = make_votes(11, 100, 9);
        let refs: Vec<&Vote> = votes.iter().collect();
        let c1 = aggregate(&refs);
        let mut shuffled: Vec<&Vote> = refs.clone();
        shuffled.rotate_left(4);
        let c2 = aggregate(&shuffled);
        assert_eq!(c1, c2, "aggregation must not depend on vote order");
    }

    #[test]
    fn majority_inclusion() {
        let votes = make_votes(12, 200, 9);
        let refs: Vec<&Vote> = votes.iter().collect();
        let consensus = aggregate(&refs);
        // With a 2% drop rate nearly every relay appears in ≥5 of 9 votes.
        assert!(consensus.entries.len() > 190);
        // Every included relay must be listed by at least 5 votes.
        for entry in &consensus.entries {
            let listings = refs.iter().filter(|v| v.get(entry.id).is_some()).count();
            assert!(listings >= 5, "{} listed by only {listings}", entry.id);
        }
    }

    #[test]
    fn excluded_when_under_threshold() {
        // A relay listed by only 4 of 9 votes must not appear.
        let votes = make_votes(13, 50, 9);
        let target = votes[0].entries()[0].id;
        let trimmed: Vec<Vote> = votes
            .iter()
            .enumerate()
            .map(|(i, v)| {
                let entries: Vec<RelayInfo> = v
                    .entries()
                    .iter()
                    .filter(|e| i < 4 || e.id != target)
                    .cloned()
                    .collect();
                Vote::new(v.meta.clone(), entries)
            })
            .collect();
        let refs: Vec<&Vote> = trimmed.iter().collect();
        let consensus = aggregate(&refs);
        assert!(consensus.entries.iter().all(|e| e.id != target));
    }

    #[test]
    fn bandwidth_is_median_of_measuring_votes() {
        let pop = generate_population(&PopulationConfig { seed: 20, count: 1 });
        let votes: Vec<Vote> = (0..5u8)
            .map(|i| {
                let mut view = pop.clone();
                view[0].bandwidth = match i {
                    0 => Some(100),
                    1 => Some(300),
                    2 => Some(200),
                    // Two authorities do not measure.
                    _ => None,
                };
                Vote::new(
                    VoteMeta::standard(AuthorityId(i), "a", String::new(), 0),
                    view,
                )
            })
            .collect();
        let refs: Vec<&Vote> = votes.iter().collect();
        let consensus = aggregate(&refs);
        assert_eq!(consensus.entries[0].bandwidth, Some(200));
    }

    #[test]
    fn flag_tie_means_unset() {
        let pop = generate_population(&PopulationConfig { seed: 21, count: 1 });
        let votes: Vec<Vote> = (0..4u8)
            .map(|i| {
                let mut view = pop.clone();
                // Exactly half the votes set Guard.
                if i % 2 == 0 {
                    view[0].flags.insert(RelayFlags::GUARD);
                } else {
                    view[0].flags.remove(RelayFlags::GUARD);
                }
                Vote::new(
                    VoteMeta::standard(AuthorityId(i), "a", String::new(), 0),
                    view,
                )
            })
            .collect();
        let refs: Vec<&Vote> = votes.iter().collect();
        let consensus = aggregate(&refs);
        assert!(
            !consensus.entries[0].flags.contains(RelayFlags::GUARD),
            "tied flag must not be set"
        );
    }

    #[test]
    fn version_tie_selects_largest() {
        let pop = generate_population(&PopulationConfig { seed: 22, count: 1 });
        let old = TorVersion::new(0, 4, 7, 13);
        let new = TorVersion::new(0, 4, 8, 11);
        let votes: Vec<Vote> = (0..4u8)
            .map(|i| {
                let mut view = pop.clone();
                view[0].version = if i % 2 == 0 { old } else { new };
                Vote::new(
                    VoteMeta::standard(AuthorityId(i), "a", String::new(), 0),
                    view,
                )
            })
            .collect();
        let refs: Vec<&Vote> = votes.iter().collect();
        let consensus = aggregate(&refs);
        assert_eq!(consensus.entries[0].version, new);
    }

    #[test]
    fn nickname_from_largest_authority_id() {
        let pop = generate_population(&PopulationConfig { seed: 23, count: 1 });
        let votes: Vec<Vote> = (0..5u8)
            .map(|i| {
                let mut view = pop.clone();
                view[0].nickname = format!("seen-by-{i}");
                Vote::new(
                    VoteMeta::standard(AuthorityId(i), "a", String::new(), 0),
                    view,
                )
            })
            .collect();
        let refs: Vec<&Vote> = votes.iter().collect();
        let consensus = aggregate(&refs);
        assert_eq!(consensus.entries[0].nickname, "seen-by-4");
    }

    #[test]
    fn signatures_and_validity() {
        let set = AuthoritySet::live(30);
        let votes = make_votes(30, 20, 9);
        let refs: Vec<&Vote> = votes.iter().collect();
        let mut consensus = aggregate(&refs);
        let keys = set.verifying_keys();
        assert!(!consensus.is_valid(&keys, 9));
        for i in 0..5u8 {
            let auth = set.get(AuthorityId(i));
            consensus.sign(auth.id, &auth.signing_key);
        }
        assert_eq!(consensus.valid_signatures(&keys), 5);
        assert!(consensus.is_valid(&keys, 9), "5 of 9 is a majority");
    }

    #[test]
    fn duplicate_signatures_count_once() {
        let set = AuthoritySet::live(31);
        let votes = make_votes(31, 5, 9);
        let refs: Vec<&Vote> = votes.iter().collect();
        let mut consensus = aggregate(&refs);
        let auth = set.get(AuthorityId(0));
        consensus.sign(auth.id, &auth.signing_key);
        consensus.sign(auth.id, &auth.signing_key);
        assert_eq!(consensus.valid_signatures(&set.verifying_keys()), 1);
    }

    #[test]
    fn forged_signature_rejected() {
        let set = AuthoritySet::live(32);
        let votes = make_votes(32, 5, 9);
        let refs: Vec<&Vote> = votes.iter().collect();
        let mut consensus = aggregate(&refs);
        // Authority 1 signs, but the signature is attributed to authority 0.
        let impostor = set.get(AuthorityId(1));
        let sig = impostor.signing_key.sign(consensus.digest().as_bytes());
        consensus.signatures.push((AuthorityId(0), sig));
        assert_eq!(consensus.valid_signatures(&set.verifying_keys()), 0);
    }

    #[test]
    fn consensus_encode_parse_roundtrip() {
        let set = AuthoritySet::live(33);
        let votes = make_votes(33, 40, 9);
        let refs: Vec<&Vote> = votes.iter().collect();
        let mut consensus = aggregate(&refs);
        for i in [0u8, 3, 5] {
            let auth = set.get(AuthorityId(i));
            consensus.sign(auth.id, &auth.signing_key);
        }
        let text = consensus.encode();
        let parsed = Consensus::parse(&text).expect("parses");
        assert_eq!(parsed, consensus);
        assert_eq!(parsed.digest(), consensus.digest());
    }

    #[test]
    fn valid_after_is_median() {
        let pop = generate_population(&PopulationConfig { seed: 40, count: 1 });
        let times = [100u64, 5000, 200, 300, 250];
        let votes: Vec<Vote> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                Vote::new(
                    VoteMeta::standard(AuthorityId(i as u8), "a", String::new(), t),
                    pop.clone(),
                )
            })
            .collect();
        let refs: Vec<&Vote> = votes.iter().collect();
        let consensus = aggregate(&refs);
        assert_eq!(consensus.meta.valid_after, 250, "median, immune to 5000");
    }
}
