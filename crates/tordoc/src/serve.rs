//! Serving consensus documents and diffs (the cache side of proposal
//! 140).
//!
//! A directory cache (or authority dirport) keeps the latest consensus
//! plus a short history, and answers each fetch with either the full
//! document or a [`ConsensusDiff`] from the digest the requester already
//! holds. This module is the piece the distribution layer
//! (`partialtor-dirdist`) sits on: it decides *what* goes on the wire,
//! the simulator decides how long the bytes take.

use crate::consensus::Consensus;
use crate::diff::ConsensusDiff;
use partialtor_crypto::Digest32;
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// What a directory server sends back for one consensus fetch.
#[derive(Clone, Debug)]
pub enum Served<'a> {
    /// The requester's base was unknown or too old: the full document.
    Full(&'a Consensus),
    /// The requester holds a retained predecessor: a diff to the latest.
    Diff(&'a ConsensusDiff),
}

impl Served<'_> {
    /// Bytes this response occupies on the wire.
    pub fn wire_bytes(&self) -> u64 {
        match self {
            Served::Full(c) => c.wire_size(),
            Served::Diff(d) => d.wire_size(),
        }
    }

    /// Whether the response is a diff.
    pub fn is_diff(&self) -> bool {
        matches!(self, Served::Diff(_))
    }

    /// Clones the response out of the store so the borrow (and any lock
    /// guarding the store) can be released before the payload is
    /// encoded and written — the handoff a threaded serving daemon
    /// needs: lock, [`DiffStore::serve`], `into_owned`, unlock, then
    /// encode and send on a worker's own time.
    pub fn into_owned(self) -> ServedOwned {
        match self {
            Served::Full(c) => ServedOwned::Full(c.clone()),
            Served::Diff(d) => ServedOwned::Diff(d.clone()),
        }
    }
}

/// An owned [`Served`]: the same response, detached from the store's
/// lifetime. Produced by [`Served::into_owned`].
#[derive(Clone, Debug)]
pub enum ServedOwned {
    /// The full latest document.
    Full(Consensus),
    /// A diff from a retained predecessor to the latest document.
    Diff(ConsensusDiff),
}

impl ServedOwned {
    /// Bytes this response occupies on the wire.
    pub fn wire_bytes(&self) -> u64 {
        match self {
            ServedOwned::Full(c) => c.wire_size(),
            ServedOwned::Diff(d) => d.wire_size(),
        }
    }

    /// Whether the response is a diff.
    pub fn is_diff(&self) -> bool {
        matches!(self, ServedOwned::Diff(_))
    }

    /// Canonical text encoding of the payload (the bytes a serving
    /// daemon puts in a response body).
    pub fn encode(&self) -> String {
        match self {
            ServedOwned::Full(c) => c.encode(),
            ServedOwned::Diff(d) => d.encode(),
        }
    }

    /// Digest of the document this response yields: the served document
    /// itself for a full response, the diff's target for a diff.
    pub fn target_digest(&self) -> Digest32 {
        match self {
            ServedOwned::Full(c) => c.digest(),
            ServedOwned::Diff(d) => d.to_digest,
        }
    }
}

/// A serving store: the latest consensus, a bounded history of
/// predecessors, and precomputed diffs from each retained predecessor to
/// the latest document.
///
/// # Examples
///
/// ```
/// use partialtor_tordoc::prelude::*;
/// use partialtor_tordoc::serve::DiffStore;
///
/// let population = generate_population(&PopulationConfig { seed: 1, count: 50 });
/// let committee = AuthoritySet::live(1);
/// let make = |valid_after: u64| {
///     let votes: Vec<Vote> = committee
///         .iter()
///         .map(|auth| {
///             let view = authority_view(&population, auth.id, 1, &ViewConfig::default());
///             Vote::new(
///                 VoteMeta::standard(auth.id, &auth.name, auth.fingerprint_hex(), valid_after),
///                 view,
///             )
///         })
///         .collect();
///     let refs: Vec<&Vote> = votes.iter().collect();
///     aggregate(&refs)
/// };
///
/// let mut store = DiffStore::new(3);
/// let first = make(3_600);
/// let first_digest = first.digest();
/// store.publish(first);
/// store.publish(make(7_200));
///
/// // A client on the previous consensus gets a (much smaller) diff.
/// let served = store.serve(Some(&first_digest)).unwrap();
/// assert!(served.is_diff());
/// // A bootstrapping client gets the full document.
/// assert!(!store.serve(None).unwrap().is_diff());
/// ```
#[derive(Clone, Debug, Default)]
pub struct DiffStore {
    /// How many predecessor documents to keep diffs for.
    retain: usize,
    /// Retained documents, oldest first; the last element is the latest.
    history: VecDeque<Consensus>,
    /// Diffs keyed by the *from* digest, all targeting the latest document.
    diffs: BTreeMap<Digest32, ConsensusDiff>,
}

impl DiffStore {
    /// Creates a store retaining diffs from up to `retain` predecessors
    /// (Tor's `consdiff` cache keeps a handful of recent bases).
    pub fn new(retain: usize) -> Self {
        DiffStore {
            retain,
            history: VecDeque::new(),
            diffs: BTreeMap::new(),
        }
    }

    /// Publishes a new latest consensus, recomputing the diff set.
    ///
    /// Cost is `retain` diff computations over sorted entry lists — the
    /// proposal-140 hot path measured by the `diff` bench.
    pub fn publish(&mut self, consensus: Consensus) {
        self.history.push_back(consensus);
        while self.history.len() > self.retain + 1 {
            self.history.pop_front();
        }
        let latest = self.history.back().expect("just pushed");
        self.diffs = self
            .history
            .iter()
            .take(self.history.len() - 1)
            .map(|base| (base.digest(), ConsensusDiff::compute(base, latest)))
            .collect();
    }

    /// The latest published consensus.
    pub fn latest(&self) -> Option<&Consensus> {
        self.history.back()
    }

    /// Number of predecessor documents currently diffable against.
    pub fn diffable_bases(&self) -> usize {
        self.diffs.len()
    }

    /// Answers a fetch from a requester holding `have` (its current
    /// consensus digest, if any). Returns `None` when nothing has been
    /// published yet; a diff when `have` is a retained predecessor; the
    /// full latest document otherwise. A requester already holding the
    /// latest gets the full document back (real caches answer 304; the
    /// distribution layer never asks in that state).
    pub fn serve(&self, have: Option<&Digest32>) -> Option<Served<'_>> {
        let latest = self.history.back()?;
        if let Some(digest) = have {
            if let Some(diff) = self.diffs.get(digest) {
                return Some(Served::Diff(diff));
            }
        }
        Some(Served::Full(latest))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authority::AuthorityId;
    use crate::consensus::{aggregate, ConsensusMeta};
    use crate::generator::{authority_view, generate_population, PopulationConfig, ViewConfig};
    use crate::vote::{Vote, VoteMeta};

    fn consensus_at(seed: u64, count: usize, valid_after: u64) -> Consensus {
        let population = generate_population(&PopulationConfig { seed, count });
        let votes: Vec<Vote> = (0..9u8)
            .map(|i| {
                let view =
                    authority_view(&population, AuthorityId(i), seed, &ViewConfig::default());
                Vote::new(
                    VoteMeta::standard(AuthorityId(i), "a", String::new(), valid_after),
                    view,
                )
            })
            .collect();
        let refs: Vec<&Vote> = votes.iter().collect();
        aggregate(&refs)
    }

    /// The "next hour": drop a few relays, tweak one, bump the window.
    fn churned(base: &Consensus, drop: usize, valid_after: u64) -> Consensus {
        let mut entries = base.entries.clone();
        entries.drain(..drop.min(entries.len()));
        if let Some(e) = entries.first_mut() {
            e.bandwidth = e.bandwidth.map(|b| b + 1);
        }
        Consensus {
            meta: ConsensusMeta {
                valid_after,
                fresh_until: valid_after + 3600,
                valid_until: valid_after + 3 * 3600,
            },
            entries,
            signatures: Vec::new(),
        }
    }

    #[test]
    fn empty_store_serves_nothing() {
        let store = DiffStore::new(3);
        assert!(store.serve(None).is_none());
        assert!(store.latest().is_none());
    }

    #[test]
    fn serves_full_to_bootstrapping_and_diff_to_recent() {
        let mut store = DiffStore::new(3);
        let v0 = consensus_at(11, 60, 3_600);
        let d0 = v0.digest();
        let v1 = churned(&v0, 2, 7_200);
        store.publish(v0.clone());
        store.publish(v1.clone());

        let full = store.serve(None).unwrap();
        assert!(!full.is_diff());
        assert_eq!(full.wire_bytes(), v1.wire_size());

        let diff = store.serve(Some(&d0)).unwrap();
        assert!(diff.is_diff());
        assert!(diff.wire_bytes() < full.wire_bytes() / 4);
        // The served diff genuinely reconstructs the latest document.
        match diff {
            Served::Diff(d) => {
                assert_eq!(d.apply(&v0).unwrap().digest(), v1.digest());
            }
            Served::Full(_) => unreachable!(),
        }
    }

    #[test]
    fn unknown_base_falls_back_to_full() {
        let mut store = DiffStore::new(3);
        store.publish(consensus_at(12, 40, 3_600));
        let stranger = consensus_at(99, 40, 3_600).digest();
        assert!(!store.serve(Some(&stranger)).unwrap().is_diff());
    }

    /// The serving-daemon handoff pin: many threads serving under
    /// publish churn, each taking `serve(..).into_owned()` inside the
    /// lock and verifying on its own time, never see a torn diff —
    /// every served diff applies cleanly to its claimed base and lands
    /// on a digest that was actually published.
    #[test]
    fn concurrent_serves_under_publish_churn_never_tear() {
        use std::collections::BTreeSet;
        use std::sync::{Arc, Mutex};

        let mut docs = vec![consensus_at(21, 80, 3_600)];
        for hour in 1..20u64 {
            docs.push(churned(docs.last().unwrap(), 1, 3_600 * (hour + 1)));
        }
        let digests: Vec<Digest32> = docs.iter().map(Consensus::digest).collect();
        let valid: BTreeSet<Digest32> = digests.iter().copied().collect();
        let bases = Arc::new(docs.clone());

        let store = Arc::new(Mutex::new(DiffStore::new(3)));
        store.lock().unwrap().publish(docs[0].clone());

        let publisher = {
            let store = Arc::clone(&store);
            let docs = docs.clone();
            std::thread::spawn(move || {
                for doc in docs.into_iter().skip(1) {
                    store.lock().unwrap().publish(doc);
                    std::thread::yield_now();
                }
            })
        };
        let servers: Vec<_> = (0..4u64)
            .map(|worker| {
                let store = Arc::clone(&store);
                let bases = Arc::clone(&bases);
                let digests = digests.clone();
                let valid = valid.clone();
                std::thread::spawn(move || {
                    let mut diffs_seen = 0u64;
                    for round in 0..400u64 {
                        let index = ((worker * 131 + round * 7) % digests.len() as u64) as usize;
                        let owned = {
                            let guard = store.lock().unwrap();
                            guard.serve(Some(&digests[index])).map(Served::into_owned)
                        };
                        // Lock released — verification races the publisher.
                        match owned {
                            Some(ServedOwned::Diff(diff)) => {
                                assert_eq!(diff.from_digest, digests[index]);
                                let rebuilt =
                                    diff.apply(&bases[index]).expect("served diff applies");
                                assert!(
                                    valid.contains(&rebuilt.digest()),
                                    "diff target must be a published document"
                                );
                                diffs_seen += 1;
                            }
                            Some(ServedOwned::Full(doc)) => {
                                assert!(valid.contains(&doc.digest()));
                            }
                            None => unreachable!("store is never empty here"),
                        }
                    }
                    diffs_seen
                })
            })
            .collect();
        publisher.join().unwrap();
        let diffs: u64 = servers.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(diffs > 0, "the race must actually exercise diff serving");
    }

    #[test]
    fn history_is_bounded_and_diffs_track_latest() {
        let mut store = DiffStore::new(2);
        let mut doc = consensus_at(13, 50, 3_600);
        let mut digests = vec![doc.digest()];
        store.publish(doc.clone());
        for hour in 1..=4u64 {
            doc = churned(&doc, 1, 3_600 * (hour + 1));
            digests.push(doc.digest());
            store.publish(doc.clone());
        }
        assert_eq!(store.diffable_bases(), 2, "only `retain` bases kept");
        // The two most recent predecessors diff; older ones get full docs.
        assert!(store.serve(Some(&digests[3])).unwrap().is_diff());
        assert!(store.serve(Some(&digests[2])).unwrap().is_diff());
        assert!(!store.serve(Some(&digests[1])).unwrap().is_diff());
        // Every diff targets the current latest.
        match store.serve(Some(&digests[3])).unwrap() {
            Served::Diff(d) => assert_eq!(d.to_digest, doc.digest()),
            Served::Full(_) => unreachable!(),
        }
    }
}
