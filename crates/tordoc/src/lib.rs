//! `partialtor-tordoc` — Tor directory documents and aggregation.
//!
//! This crate models the *data plane* of the Tor directory protocol:
//!
//! * relay status entries ([`relay`]) — identities, flags, versions,
//!   exit-policy summaries, measured bandwidth;
//! * per-authority **votes** ([`vote`]) with a dir-spec-shaped text
//!   encoding that round-trips through [`Vote::parse`];
//! * **consensus documents** ([`consensus`]) produced by the Fig. 2
//!   aggregation algorithm of the paper, carrying Ed25519 authority
//!   signatures, valid only with a majority of them;
//! * deterministic **population generation** ([`generator`]) standing in
//!   for the tornettools-derived network of the paper's evaluation;
//! * **diff serving** ([`serve`]) — the cache-side store that answers
//!   consensus fetches with the full document or a proposal-140
//!   [`ConsensusDiff`], feeding the `partialtor-dirdist` distribution
//!   layer.
//!
//! # Examples
//!
//! ```
//! use partialtor_tordoc::prelude::*;
//!
//! // Ground truth network, viewed noisily by 9 authorities.
//! let population = generate_population(&PopulationConfig { seed: 1, count: 100 });
//! let committee = AuthoritySet::live(1);
//! let votes: Vec<Vote> = committee
//!     .iter()
//!     .map(|auth| {
//!         let view = authority_view(&population, auth.id, 1, &ViewConfig::default());
//!         Vote::new(
//!             VoteMeta::standard(auth.id, &auth.name, auth.fingerprint_hex(), 3600),
//!             view,
//!         )
//!     })
//!     .collect();
//!
//! // Aggregate and sign.
//! let refs: Vec<&Vote> = votes.iter().collect();
//! let mut consensus = aggregate(&refs);
//! for auth in committee.iter().take(5) {
//!     consensus.sign(auth.id, &auth.signing_key);
//! }
//! assert!(consensus.is_valid(&committee.verifying_keys(), committee.len()));
//! ```

pub mod authority;
pub mod consensus;
pub mod diff;
pub mod generator;
pub mod relay;
pub mod serve;
pub mod vote;

pub use authority::{Authority, AuthorityId, AuthoritySet};
pub use consensus::{aggregate, Consensus, ConsensusEntry, ConsensusMeta};
pub use diff::ConsensusDiff;
pub use generator::{authority_view, generate_population, PopulationConfig, ViewConfig};
pub use relay::{ExitPolicySummary, RelayFlags, RelayId, RelayInfo, TorVersion};
pub use serve::{DiffStore, Served};
pub use vote::{DocError, Vote, VoteMeta};

/// One-stop imports.
pub mod prelude {
    pub use crate::authority::{Authority, AuthorityId, AuthoritySet};
    pub use crate::consensus::{aggregate, Consensus, ConsensusEntry, ConsensusMeta};
    pub use crate::diff::ConsensusDiff;
    pub use crate::generator::{authority_view, generate_population, PopulationConfig, ViewConfig};
    pub use crate::relay::{ExitPolicySummary, RelayFlags, RelayId, RelayInfo, TorVersion};
    pub use crate::serve::{DiffStore, Served};
    pub use crate::vote::{DocError, Vote, VoteMeta};
}
