//! Directory authority identities.
//!
//! Nine named authorities run the directory protocol. Each holds an
//! Ed25519 signing key; its fingerprint is the SHA-256 of the public key,
//! mirroring how Tor authorities are identified by key digests.

use partialtor_crypto::{sha256, Digest32, SigningKey, VerifyingKey};

/// Index of an authority within the committee (0-based, dense).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct AuthorityId(pub u8);

impl AuthorityId {
    /// The index backing this id.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for AuthorityId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "auth{}", self.0)
    }
}

/// A directory authority's long-term identity.
pub struct Authority {
    /// Committee index.
    pub id: AuthorityId,
    /// Human-readable name (e.g. `moria1`).
    pub name: String,
    /// Signing key.
    pub signing_key: SigningKey,
}

impl Authority {
    /// Deterministically derives authority `id` of a committee from a seed.
    pub fn derive(seed: u64, id: u8, name: &str) -> Self {
        let d = sha256::digest_parts(&[b"authority-key", &seed.to_le_bytes(), &[id]]);
        Authority {
            id: AuthorityId(id),
            name: name.to_string(),
            signing_key: SigningKey::from_seed(*d.as_bytes()),
        }
    }

    /// The public key.
    pub fn verifying_key(&self) -> VerifyingKey {
        self.signing_key.verifying_key()
    }

    /// SHA-256 fingerprint of the public key.
    pub fn fingerprint(&self) -> Digest32 {
        sha256::digest(&self.verifying_key().to_bytes())
    }

    /// Tor-style 40-hex-character fingerprint (first 20 bytes).
    pub fn fingerprint_hex(&self) -> String {
        self.fingerprint().short_hex(20)
    }
}

impl std::fmt::Debug for Authority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Authority({}, {})",
            self.name,
            &self.fingerprint_hex()[..8]
        )
    }
}

/// The full committee for one directory protocol instance.
pub struct AuthoritySet {
    authorities: Vec<Authority>,
}

impl AuthoritySet {
    /// The nine live directory authority names.
    pub const LIVE_NAMES: [&'static str; 9] = [
        "moria1",
        "tor26",
        "dizum",
        "gabelmoo",
        "dannenberg",
        "maatuska",
        "longclaw",
        "bastet",
        "faravahar",
    ];

    /// Builds the standard nine-authority committee.
    pub fn live(seed: u64) -> Self {
        Self::with_size(seed, 9)
    }

    /// Builds a committee of arbitrary size (names cycle for n > 9).
    pub fn with_size(seed: u64, n: usize) -> Self {
        let authorities = (0..n)
            .map(|i| {
                let base = Self::LIVE_NAMES[i % 9];
                let name = if i < 9 {
                    base.to_string()
                } else {
                    format!("{base}-{}", i / 9)
                };
                Authority::derive(seed, i as u8, &name)
            })
            .collect();
        AuthoritySet { authorities }
    }

    /// Number of authorities.
    pub fn len(&self) -> usize {
        self.authorities.len()
    }

    /// Whether the committee is empty.
    pub fn is_empty(&self) -> bool {
        self.authorities.is_empty()
    }

    /// Access by id.
    pub fn get(&self, id: AuthorityId) -> &Authority {
        &self.authorities[id.index()]
    }

    /// Iterates over the committee.
    pub fn iter(&self) -> impl Iterator<Item = &Authority> {
        self.authorities.iter()
    }

    /// All public keys, indexed by authority id.
    pub fn verifying_keys(&self) -> Vec<VerifyingKey> {
        self.authorities.iter().map(|a| a.verifying_key()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_committee_has_nine_named_authorities() {
        let set = AuthoritySet::live(1);
        assert_eq!(set.len(), 9);
        assert_eq!(set.get(AuthorityId(0)).name, "moria1");
        assert_eq!(set.get(AuthorityId(8)).name, "faravahar");
    }

    #[test]
    fn keys_are_distinct_and_deterministic() {
        let a = AuthoritySet::live(7);
        let b = AuthoritySet::live(7);
        let c = AuthoritySet::live(8);
        for i in 0..9 {
            let id = AuthorityId(i);
            assert_eq!(
                a.get(id).verifying_key(),
                b.get(id).verifying_key(),
                "same seed, same keys"
            );
            assert_ne!(
                a.get(id).verifying_key(),
                c.get(id).verifying_key(),
                "different seed, different keys"
            );
            for j in 0..i {
                assert_ne!(
                    a.get(id).verifying_key(),
                    a.get(AuthorityId(j)).verifying_key(),
                    "distinct keys within committee"
                );
            }
        }
    }

    #[test]
    fn signatures_verify_across_the_set() {
        let set = AuthoritySet::live(3);
        let msg = b"consensus";
        for auth in set.iter() {
            let sig = auth.signing_key.sign(msg);
            auth.verifying_key().verify(msg, &sig).expect("verifies");
        }
    }

    #[test]
    fn scaled_committee_names() {
        let set = AuthoritySet::with_size(1, 13);
        assert_eq!(set.len(), 13);
        assert_eq!(set.get(AuthorityId(9)).name, "moria1-1");
    }

    #[test]
    fn fingerprint_hex_length() {
        let set = AuthoritySet::live(2);
        assert_eq!(set.get(AuthorityId(0)).fingerprint_hex().len(), 40);
    }
}
