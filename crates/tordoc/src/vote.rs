//! Status votes: the per-authority input documents of the directory
//! protocol.
//!
//! A vote lists everything one authority believes about the relay
//! population. The text encoding follows the shape of Tor's v3 directory
//! format (`r`/`m`/`s`/`v`/`pr`/`w`/`p` lines per relay) with timestamps
//! simplified to Unix seconds; it parses back losslessly, which the
//! property tests exercise.

use crate::authority::AuthorityId;
use crate::relay::{ExitPolicySummary, RelayFlags, RelayId, RelayInfo, TorVersion};
use partialtor_crypto::{sha256, Digest32};

/// Vote/consensus parse failures, with the offending 1-based line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DocError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub reason: String,
}

impl DocError {
    pub(crate) fn new(line: usize, reason: impl Into<String>) -> Self {
        DocError {
            line,
            reason: reason.into(),
        }
    }
}

impl std::fmt::Display for DocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for DocError {}

/// Header metadata of a vote.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VoteMeta {
    /// The voting authority.
    pub authority: AuthorityId,
    /// Its human-readable name.
    pub authority_name: String,
    /// Its 40-hex-character fingerprint.
    pub authority_fingerprint: String,
    /// Publication time (Unix seconds).
    pub published: u64,
    /// Start of the validity interval.
    pub valid_after: u64,
    /// When the produced consensus goes stale (1 h after `valid_after`).
    pub fresh_until: u64,
    /// When the produced consensus becomes invalid (3 h).
    pub valid_until: u64,
}

impl VoteMeta {
    /// Builds metadata with the standard 1 h fresh / 3 h valid windows.
    pub fn standard(
        authority: AuthorityId,
        name: &str,
        fingerprint: String,
        valid_after: u64,
    ) -> Self {
        VoteMeta {
            authority,
            authority_name: name.to_string(),
            authority_fingerprint: fingerprint,
            published: valid_after.saturating_sub(300),
            valid_after,
            fresh_until: valid_after + 3600,
            valid_until: valid_after + 3 * 3600,
        }
    }
}

/// A complete status vote.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Vote {
    /// Header metadata.
    pub meta: VoteMeta,
    /// Relay entries, sorted by identity.
    entries: Vec<RelayInfo>,
}

impl Vote {
    /// Creates a vote, sorting entries by relay identity and dropping
    /// duplicates (later entries win, matching "most recent descriptor").
    pub fn new(meta: VoteMeta, mut entries: Vec<RelayInfo>) -> Self {
        entries.sort_by_key(|e| e.id);
        entries.dedup_by(|later, earlier| {
            if later.id == earlier.id {
                std::mem::swap(later, earlier);
                true
            } else {
                false
            }
        });
        Vote { meta, entries }
    }

    /// The relay entries, sorted by identity.
    pub fn entries(&self) -> &[RelayInfo] {
        &self.entries
    }

    /// Number of relays listed.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the vote lists no relays.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a relay by id (entries are sorted).
    pub fn get(&self, id: RelayId) -> Option<&RelayInfo> {
        self.entries
            .binary_search_by_key(&id, |e| e.id)
            .ok()
            .map(|i| &self.entries[i])
    }

    /// Canonical text encoding.
    pub fn encode(&self) -> String {
        let m = &self.meta;
        let mut out = String::with_capacity(128 + self.entries.len() * 360);
        out.push_str("network-status-version 3\n");
        out.push_str("vote-status vote\n");
        out.push_str("consensus-method 28\n");
        out.push_str(&format!("published {}\n", m.published));
        out.push_str(&format!("valid-after {}\n", m.valid_after));
        out.push_str(&format!("fresh-until {}\n", m.fresh_until));
        out.push_str(&format!("valid-until {}\n", m.valid_until));
        out.push_str("voting-delay 300 300\n");
        out.push_str(&format!(
            "dir-source {} {} {}\n",
            m.authority_name, m.authority.0, m.authority_fingerprint
        ));
        out.push_str("known-flags Authority BadExit Exit Fast Guard HSDir MiddleOnly Running Stable StaleDesc V2Dir Valid\n");
        for e in &self.entries {
            encode_relay(&mut out, e, true);
        }
        out.push_str("directory-footer\n");
        out
    }

    /// SHA-256 digest of the canonical encoding. This is the `h_i` that the
    /// paper's dissemination sub-protocol signs and agrees on.
    pub fn digest(&self) -> Digest32 {
        sha256::digest(self.encode().as_bytes())
    }

    /// Size of the canonical encoding in bytes (the `d` of the paper's
    /// complexity analysis).
    pub fn wire_size(&self) -> u64 {
        self.encode().len() as u64
    }

    /// Parses a canonical vote encoding.
    pub fn parse(text: &str) -> Result<Vote, DocError> {
        let mut lines = text.lines().enumerate().peekable();
        let mut published = None;
        let mut valid_after = None;
        let mut fresh_until = None;
        let mut valid_until = None;
        let mut source: Option<(String, u8, String)> = None;

        // Header section.
        for (idx, line) in lines.by_ref() {
            let ln = idx + 1;
            if line.starts_with("known-flags ") {
                break;
            }
            if let Some(rest) = line.strip_prefix("published ") {
                published = Some(parse_u64(rest, ln)?);
            } else if let Some(rest) = line.strip_prefix("valid-after ") {
                valid_after = Some(parse_u64(rest, ln)?);
            } else if let Some(rest) = line.strip_prefix("fresh-until ") {
                fresh_until = Some(parse_u64(rest, ln)?);
            } else if let Some(rest) = line.strip_prefix("valid-until ") {
                valid_until = Some(parse_u64(rest, ln)?);
            } else if let Some(rest) = line.strip_prefix("dir-source ") {
                let mut parts = rest.split(' ');
                let name = parts
                    .next()
                    .ok_or_else(|| DocError::new(ln, "dir-source missing name"))?;
                let id: u8 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| DocError::new(ln, "dir-source missing id"))?;
                let fp = parts
                    .next()
                    .ok_or_else(|| DocError::new(ln, "dir-source missing fingerprint"))?;
                source = Some((name.to_string(), id, fp.to_string()));
            } else if line.starts_with("network-status-version")
                || line.starts_with("vote-status")
                || line.starts_with("consensus-method")
                || line.starts_with("voting-delay")
            {
                // Fixed header lines; accepted as-is.
            } else {
                return Err(DocError::new(ln, format!("unexpected header line: {line}")));
            }
        }

        let (authority_name, authority_id, authority_fingerprint) =
            source.ok_or_else(|| DocError::new(0, "missing dir-source"))?;
        let meta = VoteMeta {
            authority: AuthorityId(authority_id),
            authority_name,
            authority_fingerprint,
            published: published.ok_or_else(|| DocError::new(0, "missing published"))?,
            valid_after: valid_after.ok_or_else(|| DocError::new(0, "missing valid-after"))?,
            fresh_until: fresh_until.ok_or_else(|| DocError::new(0, "missing fresh-until"))?,
            valid_until: valid_until.ok_or_else(|| DocError::new(0, "missing valid-until"))?,
        };

        let entries = parse_entries(&mut lines, true)?;
        Ok(Vote::new(meta, entries))
    }
}

pub(crate) fn parse_u64(s: &str, line: usize) -> Result<u64, DocError> {
    s.parse()
        .map_err(|_| DocError::new(line, format!("bad integer: {s}")))
}

/// Encodes one relay's status lines (`with_descriptor` adds the vote-only
/// `m` line).
pub(crate) fn encode_relay(out: &mut String, e: &RelayInfo, with_descriptor: bool) {
    out.push_str(&format!(
        "r {} {} {} {} {}\n",
        e.nickname,
        e.id.fingerprint(),
        e.address_string(),
        e.or_port,
        e.dir_port
    ));
    if with_descriptor {
        out.push_str(&format!("m {}\n", e.descriptor_digest.to_hex()));
    }
    out.push_str(&format!("s {}\n", e.flags.names()));
    out.push_str(&format!("v {}\n", e.version));
    out.push_str(&format!("pr {}\n", e.protocols));
    match e.bandwidth {
        Some(bw) => out.push_str(&format!("w Bandwidth={bw} Measured={bw}\n")),
        None => out.push_str("w Bandwidth=0\n"),
    }
    out.push_str(&format!("p {}\n", e.exit_policy.summary()));
}

/// Parses relay entries from an `(index, line)` iterator.
pub(crate) fn parse_entries<'a, I>(
    lines: &mut std::iter::Peekable<I>,
    with_descriptor: bool,
) -> Result<Vec<RelayInfo>, DocError>
where
    I: Iterator<Item = (usize, &'a str)>,
{
    let mut entries = Vec::new();
    let mut current: Option<RelayInfo> = None;

    for (idx, line) in lines.by_ref() {
        let ln = idx + 1;
        if line == "directory-footer" {
            break;
        }
        if let Some(rest) = line.strip_prefix("r ") {
            if let Some(done) = current.take() {
                entries.push(done);
            }
            let parts: Vec<&str> = rest.split(' ').collect();
            if parts.len() != 5 {
                return Err(DocError::new(ln, "r line needs 5 fields"));
            }
            let id = RelayId::from_fingerprint(parts[1])
                .ok_or_else(|| DocError::new(ln, "bad fingerprint"))?;
            let addr_parts: Vec<&str> = parts[2].split('.').collect();
            if addr_parts.len() != 4 {
                return Err(DocError::new(ln, "bad IPv4 address"));
            }
            let mut address = [0u8; 4];
            for (i, p) in addr_parts.iter().enumerate() {
                address[i] = p.parse().map_err(|_| DocError::new(ln, "bad IPv4 octet"))?;
            }
            current = Some(RelayInfo {
                id,
                nickname: parts[0].to_string(),
                address,
                or_port: parse_u64(parts[3], ln)? as u16,
                dir_port: parse_u64(parts[4], ln)? as u16,
                flags: RelayFlags::NONE,
                version: TorVersion::new(0, 0, 0, 0),
                protocols: String::new(),
                exit_policy: ExitPolicySummary::reject_all(),
                bandwidth: None,
                descriptor_digest: Digest32::default(),
            });
            continue;
        }
        let entry = current
            .as_mut()
            .ok_or_else(|| DocError::new(ln, "status line before any r line"))?;
        if let Some(rest) = line.strip_prefix("m ") {
            if with_descriptor {
                entry.descriptor_digest = Digest32::from_hex(rest)
                    .ok_or_else(|| DocError::new(ln, "bad descriptor digest"))?;
            }
        } else if let Some(rest) = line.strip_prefix("s ") {
            entry.flags =
                RelayFlags::parse(rest).ok_or_else(|| DocError::new(ln, "unknown flag"))?;
        } else if let Some(rest) = line.strip_prefix("v ") {
            entry.version =
                TorVersion::parse(rest).ok_or_else(|| DocError::new(ln, "bad version"))?;
        } else if let Some(rest) = line.strip_prefix("pr ") {
            entry.protocols = rest.to_string();
        } else if let Some(rest) = line.strip_prefix("w ") {
            entry.bandwidth = None;
            for field in rest.split(' ') {
                if let Some(v) = field.strip_prefix("Measured=") {
                    entry.bandwidth = Some(parse_u64(v, ln)? as u32);
                }
            }
        } else if let Some(rest) = line.strip_prefix("p ") {
            entry.exit_policy = ExitPolicySummary::parse(rest)
                .ok_or_else(|| DocError::new(ln, "bad exit policy"))?;
        } else {
            return Err(DocError::new(ln, format!("unexpected line: {line}")));
        }
    }
    if let Some(done) = current.take() {
        entries.push(done);
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_population, PopulationConfig};

    fn sample_vote(n: usize) -> Vote {
        let pop = generate_population(&PopulationConfig { seed: 5, count: n });
        let meta = VoteMeta::standard(AuthorityId(3), "gabelmoo", "AB".repeat(20), 1_700_000_000);
        Vote::new(meta, pop)
    }

    #[test]
    fn encode_parse_roundtrip() {
        let vote = sample_vote(50);
        let text = vote.encode();
        let parsed = Vote::parse(&text).expect("parses");
        assert_eq!(parsed, vote);
    }

    #[test]
    fn digest_changes_with_content() {
        let v1 = sample_vote(10);
        let mut v2 = sample_vote(10);
        v2.meta.published += 1;
        let v2 = Vote::new(v2.meta.clone(), v2.entries.to_vec());
        assert_ne!(v1.digest(), v2.digest());
    }

    #[test]
    fn entries_sorted_and_deduped() {
        let pop = generate_population(&PopulationConfig { seed: 1, count: 5 });
        let mut doubled = pop.clone();
        doubled.extend(pop.iter().cloned());
        let meta = VoteMeta::standard(AuthorityId(0), "moria1", "00".repeat(20), 0);
        let vote = Vote::new(meta, doubled);
        assert_eq!(vote.len(), 5);
        for w in vote.entries().windows(2) {
            assert!(w[0].id < w[1].id);
        }
    }

    #[test]
    fn get_by_id() {
        let vote = sample_vote(20);
        let target = vote.entries()[7].id;
        assert_eq!(vote.get(target).unwrap().id, target);
        assert!(vote.get(RelayId::derive(999, 999)).is_none());
    }

    #[test]
    fn wire_size_scales_with_relays() {
        let small = sample_vote(10).wire_size();
        let large = sample_vote(100).wire_size();
        assert!(large > small * 5, "size should grow roughly linearly");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Vote::parse("complete nonsense\n").is_err());
        // Status line before any r line.
        let bad = "network-status-version 3\nvote-status vote\nconsensus-method 28\n\
published 1\nvalid-after 2\nfresh-until 3\nvalid-until 4\nvoting-delay 300 300\n\
dir-source moria1 0 AAAA\nknown-flags Exit\ns Exit\n";
        let err = Vote::parse(bad).unwrap_err();
        assert!(err.reason.contains("before any r line"), "{err}");
    }

    #[test]
    fn meta_standard_windows() {
        let m = VoteMeta::standard(AuthorityId(1), "tor26", String::new(), 7200);
        assert_eq!(m.fresh_until - m.valid_after, 3600);
        assert_eq!(m.valid_until - m.valid_after, 3 * 3600);
        assert_eq!(m.published, 6900);
    }
}
