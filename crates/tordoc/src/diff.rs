//! Consensus diffs (Tor proposal 140).
//!
//! Clients and caches that already hold the previous consensus can fetch
//! a *diff* instead of the full document, cutting the directory traffic
//! that makes authorities attractive DDoS targets in the first place
//! (the background load of the paper's §2.1 outage). Because consensus
//! entries are sorted by relay identity, the diff is semantic: removed
//! relays, plus inserted-or-changed entries.

use crate::consensus::{Consensus, ConsensusEntry, ConsensusMeta};
use crate::relay::RelayId;
use crate::vote::{parse_entries, parse_u64, DocError};
use partialtor_crypto::{sha256, Digest32};

/// A semantic diff between two consensus documents.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConsensusDiff {
    /// Digest of the document the diff applies to.
    pub from_digest: Digest32,
    /// Digest of the document the diff produces.
    pub to_digest: Digest32,
    /// The new document's header metadata.
    pub meta: ConsensusMeta,
    /// Relays present in `from` but absent in `to`.
    pub removed: Vec<RelayId>,
    /// Entries added or changed in `to`.
    pub upserts: Vec<ConsensusEntry>,
}

impl ConsensusDiff {
    /// Computes the diff from `from` to `to`.
    pub fn compute(from: &Consensus, to: &Consensus) -> ConsensusDiff {
        let mut removed = Vec::new();
        let mut upserts = Vec::new();

        // Both entry lists are sorted by relay id; walk them together.
        let (mut i, mut j) = (0usize, 0usize);
        while i < from.entries.len() || j < to.entries.len() {
            match (from.entries.get(i), to.entries.get(j)) {
                (Some(old), Some(new)) if old.id == new.id => {
                    if old != new {
                        upserts.push(new.clone());
                    }
                    i += 1;
                    j += 1;
                }
                (Some(old), Some(new)) if old.id < new.id => {
                    removed.push(old.id);
                    i += 1;
                }
                (Some(_), Some(new)) => {
                    upserts.push(new.clone());
                    j += 1;
                }
                (Some(old), None) => {
                    removed.push(old.id);
                    i += 1;
                }
                (None, Some(new)) => {
                    upserts.push(new.clone());
                    j += 1;
                }
                (None, None) => unreachable!("loop condition"),
            }
        }

        ConsensusDiff {
            from_digest: from.digest(),
            to_digest: to.digest(),
            meta: to.meta.clone(),
            removed,
            upserts,
        }
    }

    /// Applies the diff to `from`, reconstructing the target document
    /// (without signatures — those are fetched separately, as in Tor).
    ///
    /// Returns `None` if `from` is not the document this diff was computed
    /// against, or if the result does not hash to `to_digest`.
    pub fn apply(&self, from: &Consensus) -> Option<Consensus> {
        if from.digest() != self.from_digest {
            return None;
        }
        let mut entries: std::collections::BTreeMap<RelayId, ConsensusEntry> =
            from.entries.iter().map(|e| (e.id, e.clone())).collect();
        for id in &self.removed {
            entries.remove(id);
        }
        for entry in &self.upserts {
            entries.insert(entry.id, entry.clone());
        }
        let result = Consensus {
            meta: self.meta.clone(),
            entries: entries.into_values().collect(),
            signatures: Vec::new(),
        };
        (result.digest() == self.to_digest).then_some(result)
    }

    /// Canonical text encoding.
    pub fn encode(&self) -> String {
        let mut out = String::with_capacity(256 + self.upserts.len() * 300);
        out.push_str("consensus-diff 1\n");
        out.push_str(&format!("from {}\n", self.from_digest.to_hex()));
        out.push_str(&format!("to {}\n", self.to_digest.to_hex()));
        out.push_str(&format!("valid-after {}\n", self.meta.valid_after));
        out.push_str(&format!("fresh-until {}\n", self.meta.fresh_until));
        out.push_str(&format!("valid-until {}\n", self.meta.valid_until));
        for id in &self.removed {
            out.push_str(&format!("d {}\n", id.fingerprint()));
        }
        for entry in &self.upserts {
            let info = crate::relay::RelayInfo {
                id: entry.id,
                nickname: entry.nickname.clone(),
                address: entry.address,
                or_port: entry.or_port,
                dir_port: entry.dir_port,
                flags: entry.flags,
                version: entry.version,
                protocols: entry.protocols.clone(),
                exit_policy: entry.exit_policy.clone(),
                bandwidth: entry.bandwidth,
                descriptor_digest: Digest32::default(),
            };
            crate::vote::encode_relay(&mut out, &info, false);
        }
        out.push_str("directory-footer\n");
        out
    }

    /// Parses the canonical encoding.
    pub fn parse(text: &str) -> Result<ConsensusDiff, DocError> {
        let mut lines = text.lines().enumerate().peekable();
        let mut from_digest = None;
        let mut to_digest = None;
        let mut valid_after = None;
        let mut fresh_until = None;
        let mut valid_until = None;
        let mut removed = Vec::new();

        while let Some((idx, line)) = lines.peek().copied() {
            let ln = idx + 1;
            if line.starts_with("r ") || line == "directory-footer" {
                break;
            }
            lines.next();
            if let Some(rest) = line.strip_prefix("from ") {
                from_digest =
                    Some(Digest32::from_hex(rest).ok_or_else(|| DocError::new(ln, "bad digest"))?);
            } else if let Some(rest) = line.strip_prefix("to ") {
                to_digest =
                    Some(Digest32::from_hex(rest).ok_or_else(|| DocError::new(ln, "bad digest"))?);
            } else if let Some(rest) = line.strip_prefix("valid-after ") {
                valid_after = Some(parse_u64(rest, ln)?);
            } else if let Some(rest) = line.strip_prefix("fresh-until ") {
                fresh_until = Some(parse_u64(rest, ln)?);
            } else if let Some(rest) = line.strip_prefix("valid-until ") {
                valid_until = Some(parse_u64(rest, ln)?);
            } else if let Some(rest) = line.strip_prefix("d ") {
                removed.push(
                    RelayId::from_fingerprint(rest)
                        .ok_or_else(|| DocError::new(ln, "bad fingerprint"))?,
                );
            } else if line.starts_with("consensus-diff") {
                // Version header.
            } else {
                return Err(DocError::new(ln, format!("unexpected line: {line}")));
            }
        }

        let infos = parse_entries(&mut lines, false)?;
        let upserts = infos
            .into_iter()
            .map(|i| ConsensusEntry {
                id: i.id,
                nickname: i.nickname,
                address: i.address,
                or_port: i.or_port,
                dir_port: i.dir_port,
                flags: i.flags,
                version: i.version,
                protocols: i.protocols,
                exit_policy: i.exit_policy,
                bandwidth: i.bandwidth,
            })
            .collect();

        Ok(ConsensusDiff {
            from_digest: from_digest.ok_or_else(|| DocError::new(0, "missing from"))?,
            to_digest: to_digest.ok_or_else(|| DocError::new(0, "missing to"))?,
            meta: ConsensusMeta {
                valid_after: valid_after.ok_or_else(|| DocError::new(0, "missing valid-after"))?,
                fresh_until: fresh_until.ok_or_else(|| DocError::new(0, "missing fresh-until"))?,
                valid_until: valid_until.ok_or_else(|| DocError::new(0, "missing valid-until"))?,
            },
            removed,
            upserts,
        })
    }

    /// Wire size of the encoded diff.
    pub fn wire_size(&self) -> u64 {
        self.encode().len() as u64
    }

    /// Digest of the encoded diff (for integrity checks on mirrors).
    pub fn digest(&self) -> Digest32 {
        sha256::digest(self.encode().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authority::AuthorityId;
    use crate::consensus::aggregate;
    use crate::generator::{authority_view, generate_population, PopulationConfig, ViewConfig};
    use crate::vote::{Vote, VoteMeta};

    fn consensus_for(seed: u64, count: usize, valid_after: u64) -> Consensus {
        let population = generate_population(&PopulationConfig { seed, count });
        let votes: Vec<Vote> = (0..9u8)
            .map(|i| {
                let view =
                    authority_view(&population, AuthorityId(i), seed, &ViewConfig::default());
                Vote::new(
                    VoteMeta::standard(AuthorityId(i), "a", String::new(), valid_after),
                    view,
                )
            })
            .collect();
        let refs: Vec<&Vote> = votes.iter().collect();
        aggregate(&refs)
    }

    /// Builds "the next hour's" consensus with some churn.
    fn churned(base: &Consensus, drop: usize, valid_after: u64) -> Consensus {
        let mut entries = base.entries.clone();
        entries.drain(..drop.min(entries.len()));
        // Change a property on one surviving relay.
        if let Some(e) = entries.first_mut() {
            e.bandwidth = e.bandwidth.map(|b| b + 1);
        }
        Consensus {
            meta: ConsensusMeta {
                valid_after,
                fresh_until: valid_after + 3600,
                valid_until: valid_after + 3 * 3600,
            },
            entries,
            signatures: Vec::new(),
        }
    }

    #[test]
    fn diff_apply_reconstructs_target() {
        let old = consensus_for(1, 80, 3_600);
        let new = churned(&old, 3, 7_200);
        let diff = ConsensusDiff::compute(&old, &new);
        let rebuilt = diff.apply(&old).expect("applies");
        assert_eq!(rebuilt.digest(), new.digest());
        assert_eq!(rebuilt.entries, new.entries);
    }

    #[test]
    fn diff_rejects_wrong_base() {
        let old = consensus_for(2, 40, 3_600);
        let new = churned(&old, 2, 7_200);
        let unrelated = consensus_for(3, 40, 3_600);
        let diff = ConsensusDiff::compute(&old, &new);
        assert!(diff.apply(&unrelated).is_none());
    }

    #[test]
    fn diff_is_much_smaller_than_full_document() {
        let old = consensus_for(4, 500, 3_600);
        // 1% churn.
        let new = churned(&old, 5, 7_200);
        let diff = ConsensusDiff::compute(&old, &new);
        assert!(
            diff.wire_size() * 10 < new.wire_size(),
            "diff {} vs full {}",
            diff.wire_size(),
            new.wire_size()
        );
    }

    #[test]
    fn identity_diff_is_minimal() {
        let doc = consensus_for(5, 60, 3_600);
        let diff = ConsensusDiff::compute(&doc, &doc);
        assert!(diff.removed.is_empty());
        assert!(diff.upserts.is_empty());
        assert_eq!(diff.apply(&doc).unwrap().digest(), doc.digest());
    }

    #[test]
    fn encode_parse_roundtrip() {
        let old = consensus_for(6, 50, 3_600);
        let new = churned(&old, 4, 7_200);
        let diff = ConsensusDiff::compute(&old, &new);
        let parsed = ConsensusDiff::parse(&diff.encode()).expect("parses");
        assert_eq!(parsed, diff);
        // And the parsed diff still applies correctly.
        assert_eq!(parsed.apply(&old).unwrap().digest(), new.digest());
    }

    #[test]
    fn detects_added_relays() {
        let small = consensus_for(7, 30, 3_600);
        let big = consensus_for(7, 30, 3_600);
        // Create "new" by removing from the old instead: diff in reverse.
        let older = churned(&big, 5, 3_600);
        let diff = ConsensusDiff::compute(&older, &small);
        assert!(
            !diff.upserts.is_empty(),
            "relays present only in the target must be upserted"
        );
        assert_eq!(diff.apply(&older).unwrap().digest(), small.digest());
    }
}
