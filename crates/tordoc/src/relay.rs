//! Relay identities, status flags, versions and exit policies.
//!
//! These are the per-relay properties the directory protocol votes on; the
//! aggregation rules of Fig. 2 of the paper operate field-by-field on this
//! data.

use partialtor_crypto::{hex, sha256};

/// A relay identity fingerprint (20 bytes, displayed as uppercase hex, like
/// Tor's RSA identity digests).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RelayId([u8; 20]);

impl RelayId {
    /// Builds an id from raw bytes.
    pub const fn from_bytes(bytes: [u8; 20]) -> Self {
        RelayId(bytes)
    }

    /// Derives an id deterministically from a seed (test populations).
    pub fn derive(seed: u64, index: u64) -> Self {
        let d = sha256::digest_parts(&[b"relay-id", &seed.to_le_bytes(), &index.to_le_bytes()]);
        let mut bytes = [0u8; 20];
        bytes.copy_from_slice(&d.as_bytes()[..20]);
        RelayId(bytes)
    }

    /// Raw bytes.
    pub const fn as_bytes(&self) -> &[u8; 20] {
        &self.0
    }

    /// Uppercase-hex fingerprint (40 characters).
    pub fn fingerprint(&self) -> String {
        hex::encode_upper(&self.0)
    }

    /// Parses a 40-character hex fingerprint.
    pub fn from_fingerprint(s: &str) -> Option<Self> {
        hex::decode_array::<20>(&s.to_ascii_lowercase()).map(RelayId)
    }
}

impl std::fmt::Debug for RelayId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RelayId({})", &self.fingerprint()[..8])
    }
}

impl std::fmt::Display for RelayId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.fingerprint())
    }
}

/// The status flags a directory authority may assign to a relay.
///
/// Stored as a bit set; the variants match the v3 directory specification's
/// known flags.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RelayFlags(u16);

/// All known flags in canonical (alphabetical) order, as (bit, name).
pub const FLAG_TABLE: [(u16, &str); 12] = [
    (1 << 0, "Authority"),
    (1 << 1, "BadExit"),
    (1 << 2, "Exit"),
    (1 << 3, "Fast"),
    (1 << 4, "Guard"),
    (1 << 5, "HSDir"),
    (1 << 6, "MiddleOnly"),
    (1 << 7, "Running"),
    (1 << 8, "Stable"),
    (1 << 9, "StaleDesc"),
    (1 << 10, "V2Dir"),
    (1 << 11, "Valid"),
];

impl RelayFlags {
    /// The empty flag set.
    pub const NONE: RelayFlags = RelayFlags(0);
    /// `Authority` flag.
    pub const AUTHORITY: RelayFlags = RelayFlags(1 << 0);
    /// `BadExit` flag.
    pub const BAD_EXIT: RelayFlags = RelayFlags(1 << 1);
    /// `Exit` flag.
    pub const EXIT: RelayFlags = RelayFlags(1 << 2);
    /// `Fast` flag.
    pub const FAST: RelayFlags = RelayFlags(1 << 3);
    /// `Guard` flag.
    pub const GUARD: RelayFlags = RelayFlags(1 << 4);
    /// `HSDir` flag.
    pub const HSDIR: RelayFlags = RelayFlags(1 << 5);
    /// `MiddleOnly` flag.
    pub const MIDDLE_ONLY: RelayFlags = RelayFlags(1 << 6);
    /// `Running` flag.
    pub const RUNNING: RelayFlags = RelayFlags(1 << 7);
    /// `Stable` flag.
    pub const STABLE: RelayFlags = RelayFlags(1 << 8);
    /// `StaleDesc` flag.
    pub const STALE_DESC: RelayFlags = RelayFlags(1 << 9);
    /// `V2Dir` flag.
    pub const V2DIR: RelayFlags = RelayFlags(1 << 10);
    /// `Valid` flag.
    pub const VALID: RelayFlags = RelayFlags(1 << 11);

    /// Union of two flag sets.
    pub const fn union(self, other: RelayFlags) -> RelayFlags {
        RelayFlags(self.0 | other.0)
    }

    /// Whether all flags in `other` are present.
    pub const fn contains(self, other: RelayFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Inserts the flags in `other`.
    pub fn insert(&mut self, other: RelayFlags) {
        self.0 |= other.0;
    }

    /// Removes the flags in `other`.
    pub fn remove(&mut self, other: RelayFlags) {
        self.0 &= !other.0;
    }

    /// Iterates over the individual flags present, in canonical order.
    pub fn iter(self) -> impl Iterator<Item = RelayFlags> {
        FLAG_TABLE
            .iter()
            .filter(move |(bit, _)| self.0 & bit != 0)
            .map(|(bit, _)| RelayFlags(*bit))
    }

    /// Canonical space-separated flag names (the vote `s` line).
    pub fn names(self) -> String {
        FLAG_TABLE
            .iter()
            .filter(|(bit, _)| self.0 & bit != 0)
            .map(|(_, name)| *name)
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Parses space-separated flag names; unknown names are rejected.
    pub fn parse(s: &str) -> Option<RelayFlags> {
        let mut flags = RelayFlags::NONE;
        for name in s.split_whitespace() {
            let (bit, _) = FLAG_TABLE.iter().find(|(_, n)| *n == name)?;
            flags.0 |= bit;
        }
        Some(flags)
    }

    /// Raw bit representation.
    pub const fn bits(self) -> u16 {
        self.0
    }

    /// Reconstructs from raw bits (unknown bits are masked off).
    pub fn from_bits(bits: u16) -> RelayFlags {
        let mask: u16 = FLAG_TABLE.iter().map(|(b, _)| b).fold(0, |a, b| a | b);
        RelayFlags(bits & mask)
    }
}

impl std::fmt::Debug for RelayFlags {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RelayFlags({})", self.names())
    }
}

/// A Tor software version, ordered numerically (the Fig. 2 tie-break picks
/// the largest).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TorVersion {
    /// Major version.
    pub major: u8,
    /// Minor version.
    pub minor: u8,
    /// Micro version.
    pub micro: u8,
    /// Patch level.
    pub patch: u8,
}

impl TorVersion {
    /// Builds a version.
    pub const fn new(major: u8, minor: u8, micro: u8, patch: u8) -> Self {
        TorVersion {
            major,
            minor,
            micro,
            patch,
        }
    }

    /// Parses `"Tor X.Y.Z.W"` or `"X.Y.Z.W"`.
    pub fn parse(s: &str) -> Option<Self> {
        let s = s.strip_prefix("Tor ").unwrap_or(s);
        let mut parts = s.split('.');
        let major = parts.next()?.parse().ok()?;
        let minor = parts.next()?.parse().ok()?;
        let micro = parts.next()?.parse().ok()?;
        let patch = parts.next()?.parse().ok()?;
        if parts.next().is_some() {
            return None;
        }
        Some(TorVersion {
            major,
            minor,
            micro,
            patch,
        })
    }
}

impl std::fmt::Display for TorVersion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Tor {}.{}.{}.{}",
            self.major, self.minor, self.micro, self.patch
        )
    }
}

/// An exit-policy summary (the `p` line of a status entry).
///
/// Tor summarizes the full exit policy as `accept`/`reject` plus a port
/// list. Fig. 2's tie-break compares summaries lexicographically, so the
/// canonical string form defines the order.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ExitPolicySummary {
    /// Whether the port list is an accept list (vs. reject).
    pub accept: bool,
    /// Sorted, disjoint port ranges.
    pub ports: Vec<(u16, u16)>,
}

impl ExitPolicySummary {
    /// The reject-all policy of a non-exit relay.
    pub fn reject_all() -> Self {
        ExitPolicySummary {
            accept: false,
            ports: vec![(1, 65535)],
        }
    }

    /// A typical web-exit policy.
    pub fn web_exit() -> Self {
        ExitPolicySummary {
            accept: true,
            ports: vec![(80, 80), (443, 443)],
        }
    }

    /// Canonical summary string, e.g. `accept 80,443` or
    /// `reject 1-65535`.
    pub fn summary(&self) -> String {
        let ports = self
            .ports
            .iter()
            .map(|&(lo, hi)| {
                if lo == hi {
                    lo.to_string()
                } else {
                    format!("{lo}-{hi}")
                }
            })
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{} {}",
            if self.accept { "accept" } else { "reject" },
            ports
        )
    }

    /// Parses a canonical summary string.
    pub fn parse(s: &str) -> Option<Self> {
        let (kind, ports_str) = s.split_once(' ')?;
        let accept = match kind {
            "accept" => true,
            "reject" => false,
            _ => return None,
        };
        let mut ports = Vec::new();
        for part in ports_str.split(',') {
            if let Some((lo, hi)) = part.split_once('-') {
                ports.push((lo.parse().ok()?, hi.parse().ok()?));
            } else {
                let p: u16 = part.parse().ok()?;
                ports.push((p, p));
            }
        }
        Some(ExitPolicySummary { accept, ports })
    }
}

impl PartialOrd for ExitPolicySummary {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ExitPolicySummary {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Fig. 2: "the lexicographically larger exit policy summary".
        self.summary().cmp(&other.summary())
    }
}

/// Everything an authority asserts about one relay in its vote.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RelayInfo {
    /// Identity fingerprint.
    pub id: RelayId,
    /// Nickname (1–19 alphanumerics).
    pub nickname: String,
    /// IPv4 address.
    pub address: [u8; 4],
    /// OR port.
    pub or_port: u16,
    /// Directory port (0 if none).
    pub dir_port: u16,
    /// Status flags.
    pub flags: RelayFlags,
    /// Claimed Tor version.
    pub version: TorVersion,
    /// Subprotocol versions line (e.g. `Cons=1-2 Desc=1-2 ...`).
    pub protocols: String,
    /// Exit policy summary.
    pub exit_policy: ExitPolicySummary,
    /// Measured bandwidth in kB/s, if this authority measures bandwidth.
    pub bandwidth: Option<u32>,
    /// Descriptor digest (pins the relay's server descriptor).
    pub descriptor_digest: partialtor_crypto::Digest32,
}

impl RelayInfo {
    /// Formats the IPv4 address.
    pub fn address_string(&self) -> String {
        let [a, b, c, d] = self.address;
        format!("{a}.{b}.{c}.{d}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relay_id_fingerprint_roundtrip() {
        let id = RelayId::derive(1, 2);
        let fp = id.fingerprint();
        assert_eq!(fp.len(), 40);
        assert_eq!(RelayId::from_fingerprint(&fp), Some(id));
    }

    #[test]
    fn relay_id_derivation_is_stable_and_distinct() {
        assert_eq!(RelayId::derive(5, 7), RelayId::derive(5, 7));
        assert_ne!(RelayId::derive(5, 7), RelayId::derive(5, 8));
        assert_ne!(RelayId::derive(5, 7), RelayId::derive(6, 7));
    }

    #[test]
    fn flags_roundtrip_names() {
        let f = RelayFlags::EXIT
            .union(RelayFlags::FAST)
            .union(RelayFlags::RUNNING)
            .union(RelayFlags::VALID);
        assert_eq!(f.names(), "Exit Fast Running Valid");
        assert_eq!(RelayFlags::parse(&f.names()), Some(f));
    }

    #[test]
    fn flags_parse_rejects_unknown() {
        assert_eq!(RelayFlags::parse("Exit Wobbly"), None);
    }

    #[test]
    fn flags_set_operations() {
        let mut f = RelayFlags::NONE;
        f.insert(RelayFlags::GUARD);
        assert!(f.contains(RelayFlags::GUARD));
        f.remove(RelayFlags::GUARD);
        assert_eq!(f, RelayFlags::NONE);
    }

    #[test]
    fn flags_bits_roundtrip_masks_unknown() {
        let f = RelayFlags::from_bits(0xffff);
        assert_eq!(f.bits() & 0xf000, 0, "only 12 known bits");
    }

    #[test]
    fn version_ordering_and_parse() {
        let old = TorVersion::new(0, 4, 7, 1);
        let new = TorVersion::new(0, 4, 8, 0);
        assert!(new > old);
        assert_eq!(
            TorVersion::parse("Tor 0.4.8.10"),
            Some(TorVersion::new(0, 4, 8, 10))
        );
        assert_eq!(
            TorVersion::parse("0.4.8.10"),
            Some(TorVersion::new(0, 4, 8, 10))
        );
        assert_eq!(TorVersion::parse("0.4.8"), None);
        assert_eq!(
            TorVersion::parse("Tor 0.4.8.10").unwrap().to_string(),
            "Tor 0.4.8.10"
        );
    }

    #[test]
    fn exit_policy_summary_roundtrip() {
        for p in [
            ExitPolicySummary::reject_all(),
            ExitPolicySummary::web_exit(),
        ] {
            assert_eq!(ExitPolicySummary::parse(&p.summary()), Some(p.clone()));
        }
    }

    #[test]
    fn exit_policy_ordering_is_lexicographic_on_summary() {
        let a = ExitPolicySummary::web_exit(); // "accept 80,443"
        let r = ExitPolicySummary::reject_all(); // "reject 1-65535"
        assert!(r > a, "'reject…' sorts after 'accept…'");
    }

    #[test]
    fn flag_iter_counts() {
        let f = RelayFlags::EXIT.union(RelayFlags::GUARD);
        assert_eq!(f.iter().count(), 2);
    }
}
