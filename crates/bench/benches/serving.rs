//! Benchmarks of the serving path: wire-protocol parse/encode (the
//! per-request CPU floor), `ServingStore` lookups (what a worker does
//! per request), and the publish step that re-encodes the retained
//! payload set on every new consensus.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use partialtor_dircached::proto::{parse_request, DocRequest, ResponseHead};
use partialtor_dircached::{consensus_series, DocSetConfig, ServingStore};
use std::hint::black_box;

fn series() -> Vec<partialtor_tordoc::Consensus> {
    consensus_series(&DocSetConfig {
        seed: 11,
        relays: 500,
        history: 5,
        churn_per_hour: 10,
    })
}

fn populated_store() -> (ServingStore, Vec<partialtor_tordoc::Consensus>) {
    let docs = series();
    let store = ServingStore::new(3);
    for doc in &docs {
        store.publish(doc.clone());
    }
    (store, docs)
}

fn bench_proto(c: &mut Criterion) {
    let mut group = c.benchmark_group("serving");
    group.sample_size(10);
    let (_, docs) = populated_store();
    let base = docs[3].digest();
    let request = DocRequest::Consensus { base: Some(base) }.encode();
    group.throughput(Throughput::Bytes(request.len() as u64));
    group.bench_function("parse_request", |b| {
        b.iter(|| parse_request(black_box(request.as_bytes())))
    });
    let head = ResponseHead {
        status: 200,
        served: "diff",
        digest: Some(base),
        body_len: 4_096,
    };
    group.bench_function("encode_response_head", |b| {
        b.iter(|| black_box(&head).encode())
    });
    group.finish();
}

fn bench_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("serving");
    group.sample_size(10);
    let (store, docs) = populated_store();
    let base = docs[3].digest();
    group.bench_function("store_serve_full", |b| {
        b.iter(|| store.serve(black_box(&DocRequest::Consensus { base: None })))
    });
    group.bench_function("store_serve_diff", |b| {
        b.iter(|| store.serve(black_box(&DocRequest::Consensus { base: Some(base) })))
    });
    // The write-side cost: publishing one more document re-encodes the
    // retained diff and descriptor-delta set.
    let docs_for_publish = series();
    group.bench_function("store_publish_500_relays_retain3", |b| {
        b.iter_batched(
            || {
                let store = ServingStore::new(3);
                for doc in &docs_for_publish[..4] {
                    store.publish(doc.clone());
                }
                (store, docs_for_publish[4].clone())
            },
            |(store, next)| {
                store.publish(next);
                store
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_proto, bench_store);
criterion_main!(benches);
