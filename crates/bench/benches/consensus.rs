//! Benchmark of the BFT agreement sub-protocol: a full happy-path
//! decision among n nodes, messages exchanged in memory.

use criterion::{criterion_group, criterion_main, Criterion};
use partialtor_consensus::{
    Action, ConsensusConfig, ConsensusInstance, ConsensusMsg, ConsensusValue,
};
use partialtor_crypto::{sha256, Digest32, SigningKey};
use std::collections::VecDeque;
use std::hint::black_box;

#[derive(Clone)]
struct Val(Vec<u8>);

impl ConsensusValue for Val {
    fn digest(&self) -> Digest32 {
        sha256::digest(&self.0)
    }
    fn wire_size(&self) -> u64 {
        self.0.len() as u64
    }
}

/// Runs one synchronous happy-path instance to decision; returns the
/// number of messages exchanged.
fn decide_once(n: usize, f: usize, signers: &[SigningKey]) -> usize {
    let keys: Vec<_> = signers.iter().map(|s| s.verifying_key()).collect();
    let mut nodes: Vec<ConsensusInstance<Val>> = (0..n)
        .map(|i| {
            ConsensusInstance::new(
                ConsensusConfig {
                    instance: 5,
                    n,
                    f,
                    node: i,
                    leader_offset: 0,
                    base_timeout_ms: 1_000_000,
                },
                keys.clone(),
                signers[i].clone(),
                Box::new(|_: &Val| true),
            )
        })
        .collect();

    let mut queue: VecDeque<(usize, ConsensusMsg<Val>)> = VecDeque::new();
    let push = |queue: &mut VecDeque<(usize, ConsensusMsg<Val>)>,
                from: usize,
                actions: Vec<Action<Val>>| {
        for action in actions {
            match action {
                Action::Send { to, msg } => queue.push_back((to, msg)),
                Action::Broadcast { msg } => {
                    for to in 0..n {
                        if to != from {
                            queue.push_back((to, msg.clone()));
                        }
                    }
                }
                _ => {}
            }
        }
    };

    for (i, node) in nodes.iter_mut().enumerate() {
        let mut actions = node.start();
        actions.extend(node.set_input(Val(vec![i as u8; 64])));
        push(&mut queue, i, actions);
    }
    let mut delivered = 0;
    while let Some((to, msg)) = queue.pop_front() {
        delivered += 1;
        let actions = nodes[to].on_message(msg);
        push(&mut queue, to, actions);
        if nodes.iter().all(|node| node.decided().is_some()) {
            break;
        }
    }
    delivered
}

fn bench_agreement(c: &mut Criterion) {
    let mut group = c.benchmark_group("bft_decide");
    group.sample_size(10);
    for (n, f) in [(4usize, 1usize), (9, 2)] {
        let signers: Vec<SigningKey> = (0..n)
            .map(|i| SigningKey::from_seed([i as u8 + 1; 32]))
            .collect();
        group.bench_function(format!("n{n}_f{f}"), |b| {
            b.iter(|| black_box(decide_once(n, f, &signers)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_agreement);
criterion_main!(benches);
