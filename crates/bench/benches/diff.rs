//! Benchmarks of the proposal-140 hot path: consensus-diff compute and
//! apply at realistic relay counts (2 k ≈ the early-2021 network, 8 k ≈
//! the paper's evaluation), plus the cache-side `DiffStore` publish step
//! that recomputes a retained diff set on every new consensus.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use partialtor_tordoc::prelude::*;
use partialtor_tordoc::serve::DiffStore;
use std::hint::black_box;

/// Builds an hour-apart consensus pair with ~1 % churn.
fn consensus_pair(relays: usize) -> (Consensus, Consensus) {
    let population = generate_population(&PopulationConfig {
        seed: 11,
        count: relays,
    });
    let make = |pop: &[RelayInfo], valid_after: u64| {
        let votes: Vec<Vote> = (0..9u8)
            .map(|i| {
                let view = authority_view(pop, AuthorityId(i), 11, &ViewConfig::default());
                Vote::new(
                    VoteMeta::standard(AuthorityId(i), "a", String::new(), valid_after),
                    view,
                )
            })
            .collect();
        let refs: Vec<&Vote> = votes.iter().collect();
        aggregate(&refs)
    };
    let old = make(&population, 3_600);
    // 1% churn: replace the first relays with fresh ones.
    let replaced = relays / 100;
    let fresh = generate_population(&PopulationConfig {
        seed: 11 ^ 0x5eed,
        count: replaced,
    });
    let mut next: Vec<RelayInfo> = population[replaced..].to_vec();
    next.extend(fresh);
    let new = make(&next, 7_200);
    (old, new)
}

fn bench_compute_apply(c: &mut Criterion) {
    let mut group = c.benchmark_group("consensus_diff");
    group.sample_size(10);
    for relays in [2_000usize, 8_000] {
        let (old, new) = consensus_pair(relays);
        let diff = ConsensusDiff::compute(&old, &new);
        group.throughput(Throughput::Elements(relays as u64));
        group.bench_function(format!("compute_{relays}_relays"), |b| {
            b.iter(|| ConsensusDiff::compute(black_box(&old), black_box(&new)))
        });
        group.bench_function(format!("apply_{relays}_relays"), |b| {
            b.iter(|| black_box(&diff).apply(black_box(&old)).expect("applies"))
        });
        group.bench_function(format!("encode_{relays}_relays"), |b| {
            b.iter(|| black_box(&diff).encode())
        });
    }
    group.finish();
}

fn bench_diff_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("diff_store");
    group.sample_size(10);
    let (old, new) = consensus_pair(2_000);
    let old_digest = old.digest();
    // Publishing into a store holding three bases recomputes three diffs.
    group.bench_function("publish_2000_relays_retain3", |b| {
        b.iter_batched(
            || {
                let mut store = DiffStore::new(3);
                store.publish(old.clone());
                (store, new.clone())
            },
            |(mut store, next)| {
                store.publish(next);
                store
            },
            BatchSize::LargeInput,
        )
    });
    let mut store = DiffStore::new(3);
    store.publish(old.clone());
    store.publish(new.clone());
    group.bench_function("serve_diff_2000_relays", |b| {
        b.iter(|| {
            store
                .serve(black_box(Some(&old_digest)))
                .expect("store is populated")
                .wire_bytes()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_compute_apply, bench_diff_store);
criterion_main!(benches);
