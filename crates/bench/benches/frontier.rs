//! Benchmarks of the defense subsystem feeding the cost-of-denial
//! frontier: plan normalization, lowering onto the distribution config,
//! reactive campaign filtering, and one full attacker best-response
//! search at a deliberately small scale (the unit of work the frontier
//! sweep repeats per short-listed defense).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use partialtor::adversary::AttackPlan;
use partialtor::defense::{DefenseLever, DefensePlan};
use partialtor::experiments::frontier::{self, FrontierParams};
use partialtor_dirdist::{CachePlacement, DistConfig};
use partialtor_obs::Tracer;
use std::hint::black_box;

/// Every lever once, split into redundant pieces — the shape of a
/// mid-search candidate before normalization merges it.
fn lever_pile() -> Vec<DefenseLever> {
    vec![
        DefenseLever::Blocklist { trigger_hours: 6 },
        DefenseLever::AddCaches {
            count: 5,
            placement: CachePlacement::ClientWeighted,
        },
        DefenseLever::AddCaches {
            count: 3,
            placement: CachePlacement::ClientWeighted,
        },
        DefenseLever::ExtendLifetime {
            extra_valid_secs: 10_800,
        },
        DefenseLever::RateLimit {
            interval_scale: 2.0,
        },
        DefenseLever::Detector { trigger_hours: 3 },
        DefenseLever::Blocklist { trigger_hours: 3 },
    ]
}

fn bench_plan_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("defense_plan");
    group.throughput(Throughput::Elements(1));
    group.bench_function("normalize_7_levers", |b| {
        b.iter(|| black_box(DefensePlan::new(black_box(lever_pile()))))
    });

    let plan = DefensePlan::new(lever_pile());
    let base = DistConfig {
        clients: 50_000,
        n_caches: 20,
        ..DistConfig::default()
    };
    group.bench_function("lower_every_lever", |b| {
        b.iter(|| black_box(plan.lower(black_box(&base))))
    });

    let campaign = AttackPlan::five_of_nine().sustained_hourly(24);
    group.bench_function("effective_attack_24h_five_of_nine", |b| {
        b.iter(|| black_box(plan.effective_attack(black_box(&campaign), &Tracer::disabled())))
    });
    group.finish();
}

fn bench_best_response(c: &mut Criterion) {
    let mut group = c.benchmark_group("frontier");
    group.sample_size(10);
    group.throughput(Throughput::Elements(1));
    // One defense budget → one triage pass plus one full attacker beam
    // search, at a scale where the protocol memo dominates.
    group.bench_function("best_response_small", |b| {
        b.iter(|| {
            let params = FrontierParams {
                defense_budgets: vec![0.0],
                attack_budget_usd_month: 55.0,
                target_downtime: 0.80,
                hours: 6,
                beam: 1,
                clients: 2_000,
                caches: 4,
                relays: 500,
                seed: 1,
                attribution: false,
            };
            black_box(frontier::run_experiment(&params))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_plan_ops, bench_best_response);
criterion_main!(benches);
