//! Benchmarks of the directory-document pipeline: vote encoding/parsing
//! and the Fig. 2 aggregation algorithm.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use partialtor_tordoc::prelude::*;
use std::hint::black_box;

fn make_votes(relays: usize, authorities: usize) -> Vec<Vote> {
    let population = generate_population(&PopulationConfig {
        seed: 7,
        count: relays,
    });
    (0..authorities)
        .map(|i| {
            let auth = AuthorityId(i as u8);
            let view = authority_view(&population, auth, 7, &ViewConfig::default());
            Vote::new(
                VoteMeta::standard(auth, &format!("auth{i}"), "AB".repeat(20), 3_600),
                view,
            )
        })
        .collect()
}

fn bench_aggregation(c: &mut Criterion) {
    let mut group = c.benchmark_group("aggregate");
    group.sample_size(20);
    for relays in [100usize, 1_000] {
        let votes = make_votes(relays, 9);
        let refs: Vec<&Vote> = votes.iter().collect();
        group.throughput(Throughput::Elements(relays as u64));
        group.bench_function(format!("{relays}_relays"), |b| {
            b.iter(|| aggregate(black_box(&refs)))
        });
    }
    group.finish();
}

fn bench_encoding(c: &mut Criterion) {
    let votes = make_votes(1_000, 1);
    let vote = &votes[0];
    let encoded = vote.encode();
    let mut group = c.benchmark_group("vote");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(encoded.len() as u64));
    group.bench_function("encode_1000_relays", |b| {
        b.iter(|| black_box(vote).encode())
    });
    group.bench_function("parse_1000_relays", |b| {
        b.iter(|| Vote::parse(black_box(&encoded)).expect("parses"))
    });
    group.bench_function("digest_1000_relays", |b| {
        b.iter(|| black_box(vote).digest())
    });
    group.finish();
}

criterion_group!(benches, bench_aggregation, bench_encoding);
criterion_main!(benches);
