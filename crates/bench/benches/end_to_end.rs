//! End-to-end protocol-run benchmarks: one full simulated consensus run
//! per iteration, for each of the three directory protocols.
//!
//! These measure *simulator* wall-clock cost (events + crypto), bounding
//! how long the figure sweeps take — not simulated network latency, which
//! the figure binaries report.

use criterion::{criterion_group, criterion_main, Criterion};
use partialtor::protocols::ProtocolKind;
use partialtor::runner::{run, Scenario};
use std::hint::black_box;

fn bench_protocol_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_run");
    group.sample_size(10);
    for (label, protocol) in [
        ("current", ProtocolKind::Current),
        ("synchronous", ProtocolKind::Synchronous),
        ("icps", ProtocolKind::Icps),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let scenario = Scenario {
                    seed: 5,
                    relays: 1_000,
                    ..Scenario::default()
                };
                black_box(run(protocol, &scenario))
            })
        });
    }
    group.finish();
}

fn bench_attack_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("attack_run");
    group.sample_size(10);
    group.bench_function("icps_recovery", |b| {
        b.iter(|| {
            let scenario = Scenario {
                seed: 5,
                relays: 8_000,
                attack: partialtor::AttackPlan::five_of_nine(),
                ..Scenario::default()
            };
            black_box(run(ProtocolKind::Icps, &scenario))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_protocol_runs, bench_attack_run);
criterion_main!(benches);
