//! Benchmarks of adversary-plan evaluation: how many candidate
//! campaigns per second the strategy search can push through plan
//! normalization and through the fleet scorer (the distribution-layer
//! simulation that turns a plan into client-weighted downtime). The
//! protocol runs the search memoizes away are benchmarked separately in
//! `end_to_end`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use partialtor::adversary::{AttackPlan, AttackWindow, Target};
use partialtor_dirdist::{simulate, ConsensusTimeline, DistConfig};
use partialtor_simnet::{SimDuration, SimTime};
use std::hint::black_box;

/// A mixed day-long campaign: five authorities per run plus a rotating
/// cache set — the shape of a mid-search candidate.
fn candidate_plan(hours: u64) -> AttackPlan {
    let per_hour = AttackPlan::new(
        (0..5)
            .map(|i| {
                AttackWindow::new(
                    Target::Authority(i),
                    SimTime::ZERO,
                    SimDuration::from_secs(300),
                    240.0,
                )
            })
            .chain((0..8).map(|i| {
                AttackWindow::new(
                    Target::Cache(i),
                    SimTime::from_secs(300),
                    SimDuration::from_secs(900),
                    100.0,
                )
            }))
            .collect(),
    );
    per_hour.sustained_hourly(hours)
}

fn bench_plan_normalization(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_normalize");
    group.throughput(Throughput::Elements(1));
    group.bench_function("24h_13_targets", |b| {
        b.iter(|| black_box(candidate_plan(black_box(24))))
    });
    group.bench_function("slice_and_lower_24h", |b| {
        let plan = candidate_plan(24);
        b.iter(|| {
            let slices: usize = (1..=24)
                .map(|h| plan.run_slice(h * 3_600, 3_600).windows().len())
                .sum();
            (black_box(slices), black_box(plan.dist_windows()))
        })
    });
    group.finish();
}

fn bench_fleet_scorer(c: &mut Criterion) {
    // The attacked timeline the deployed protocol produces under the
    // candidate: no consensus after the baseline.
    let outcomes: Vec<Option<f64>> = vec![None; 24];
    let timeline = ConsensusTimeline::from_hourly_outcomes(&outcomes, 3_600, 10_800);
    let plan = candidate_plan(24);

    let mut group = c.benchmark_group("fleet_scorer");
    group.sample_size(10);
    group.throughput(Throughput::Elements(1));
    group.bench_function("plan_eval_100k_clients_20_caches", |b| {
        b.iter(|| {
            let config = DistConfig {
                seed: 7,
                clients: 100_000,
                n_caches: 20,
                link_windows: plan.dist_windows(),
                ..DistConfig::default()
            };
            black_box(simulate(&config, &timeline).fleet.client_weighted_downtime)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_plan_normalization, bench_fleet_scorer);
criterion_main!(benches);
