//! Benchmarks of the distribution layer's cohort machinery: stepping a
//! multi-million-client fleet through a full day, the cache-tier fetch
//! simulation it feeds on, and the hour-stepped `DistSession` that
//! interleaves the two with the fetch-feedback loop closed. The fleet
//! number is the one that makes `dirsim clients --clients 3000000
//! --hours 24` feasible — per-client event objects would be six orders
//! of magnitude more work.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use partialtor_dirdist::{
    cachesim, fleet, CachePlacement, ClientRegions, ConsensusTimeline, DistConfig, DistSession,
    DocModel, DocTable, FleetConfig, HourInput,
};
use std::hint::black_box;

fn healthy_day() -> ConsensusTimeline {
    let outcomes: Vec<Option<f64>> = (0..24).map(|_| Some(330.0)).collect();
    ConsensusTimeline::from_hourly_outcomes(&outcomes, 3_600, 10_800)
}

fn table_for(timeline: &ConsensusTimeline) -> DocTable {
    let model = DocModel::synthetic(8_000);
    let mut table = DocTable::new();
    for p in &timeline.publications {
        table.push_version(&model, p.hour, 0.02 * p.hour as f64, 3);
    }
    table
}

fn bench_fleet_stepping(c: &mut Criterion) {
    let timeline = healthy_day();
    let table = table_for(&timeline);
    let cached_at: Vec<Option<f64>> = timeline
        .publications
        .iter()
        .map(|p| Some(p.available_at_secs + 120.0))
        .collect();

    let mut group = c.benchmark_group("fleet_day");
    group.sample_size(10);
    for clients in [100_000u64, 3_000_000] {
        group.throughput(Throughput::Elements(clients));
        group.bench_function(format!("{clients}_clients_24h"), |b| {
            b.iter(|| {
                fleet::run(
                    &FleetConfig::sized(black_box(clients), 7),
                    &timeline,
                    &table,
                    &cached_at,
                )
            })
        });
    }
    group.finish();
}

fn bench_cache_tier(c: &mut Criterion) {
    let timeline = healthy_day();
    let table = table_for(&timeline);

    let mut group = c.benchmark_group("cache_tier_day");
    group.sample_size(10);
    for caches in [50usize, 200] {
        let config = cachesim::CacheSimConfig {
            seed: 7,
            n_caches: caches,
            ..cachesim::CacheSimConfig::default()
        };
        group.throughput(Throughput::Elements(caches as u64));
        group.bench_function(format!("{caches}_caches_24h"), |b| {
            b.iter(|| cachesim::run(black_box(&config), &timeline, &table))
        });
    }
    group.finish();
}

fn bench_session_day(c: &mut Criterion) {
    let mut group = c.benchmark_group("session_day");
    group.sample_size(10);
    for feedback in [false, true] {
        let config = DistConfig {
            clients: 3_000_000,
            n_caches: 100,
            feedback,
            ..DistConfig::default()
        };
        let label = if feedback { "feedback" } else { "open_loop" };
        group.bench_function(format!("3000000_clients_24h_{label}"), |b| {
            b.iter(|| {
                let mut session =
                    DistSession::new(black_box(&config), DocModel::synthetic(config.relays));
                for _ in 0..24 {
                    session.step_hour(HourInput::produced(330.0));
                }
                session.into_report().fleet.client_weighted_downtime
            })
        });
    }
    group.finish();
}

/// The geo overhead: a region-weighted fleet day (four Tor-weighted
/// cohorts stepping against per-region availability) against the
/// single-cohort worldwide fleet, and a region-placed session day
/// against the unplaced one.
fn bench_geo(c: &mut Criterion) {
    let timeline = healthy_day();
    let table = table_for(&timeline);
    let cached_at: Vec<Option<f64>> = timeline
        .publications
        .iter()
        .map(|p| Some(p.available_at_secs + 120.0))
        .collect();

    let mut group = c.benchmark_group("geo");
    group.sample_size(10);
    for (label, regions) in [
        ("worldwide", ClientRegions::Worldwide),
        ("tor_metrics", ClientRegions::TorMetrics),
    ] {
        group.throughput(Throughput::Elements(3_000_000));
        group.bench_function(format!("fleet_day_3000000_{label}"), |b| {
            b.iter(|| {
                fleet::run(
                    &FleetConfig {
                        regions: regions.clone(),
                        ..FleetConfig::sized(black_box(3_000_000), 7)
                    },
                    &timeline,
                    &table,
                    &cached_at,
                )
            })
        });
    }
    for (label, placement, regions) in [
        (
            "unplaced",
            CachePlacement::Uniform,
            ClientRegions::Worldwide,
        ),
        (
            "client_weighted",
            CachePlacement::ClientWeighted,
            ClientRegions::TorMetrics,
        ),
    ] {
        let config = DistConfig {
            clients: 500_000,
            n_caches: 40,
            placement,
            client_regions: regions,
            ..DistConfig::default()
        };
        group.bench_function(format!("session_day_500000_{label}"), |b| {
            b.iter(|| {
                let mut session =
                    DistSession::new(black_box(&config), DocModel::synthetic(config.relays));
                for _ in 0..24 {
                    session.step_hour(HourInput::produced(330.0));
                }
                session.into_report().fleet.client_weighted_downtime
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fleet_stepping,
    bench_cache_tier,
    bench_session_day,
    bench_geo
);
criterion_main!(benches);
