//! Benchmarks of the distribution layer's cohort machinery: stepping a
//! multi-million-client fleet through a full day, and the cache-tier
//! fetch simulation it feeds on. The fleet number is the one that makes
//! `dirsim clients --clients 3000000 --hours 24` feasible — per-client
//! event objects would be six orders of magnitude more work.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use partialtor_dirdist::{cachesim, fleet, ConsensusTimeline, DocModel, FleetConfig};
use std::hint::black_box;
use std::sync::Arc;

fn healthy_day() -> ConsensusTimeline {
    let outcomes: Vec<Option<f64>> = (0..24).map(|_| Some(330.0)).collect();
    ConsensusTimeline::from_hourly_outcomes(&outcomes, 3_600, 10_800)
}

fn bench_fleet_stepping(c: &mut Criterion) {
    let timeline = healthy_day();
    let model = DocModel::synthetic(&timeline.publications, 8_000, 0.02, 3);
    let cached_at: Vec<Option<f64>> = timeline
        .publications
        .iter()
        .map(|p| Some(p.available_at_secs + 120.0))
        .collect();

    let mut group = c.benchmark_group("fleet_day");
    group.sample_size(10);
    for clients in [100_000u64, 3_000_000] {
        group.throughput(Throughput::Elements(clients));
        group.bench_function(format!("{clients}_clients_24h"), |b| {
            b.iter(|| {
                fleet::run(
                    &FleetConfig::sized(black_box(clients), 7),
                    &timeline,
                    &model,
                    &cached_at,
                )
            })
        });
    }
    group.finish();
}

fn bench_cache_tier(c: &mut Criterion) {
    let timeline = healthy_day();
    let model = Arc::new(DocModel::synthetic(&timeline.publications, 8_000, 0.02, 3));

    let mut group = c.benchmark_group("cache_tier_day");
    group.sample_size(10);
    for caches in [50usize, 200] {
        let config = cachesim::CacheSimConfig {
            seed: 7,
            n_caches: caches,
            ..cachesim::CacheSimConfig::default()
        };
        group.throughput(Throughput::Elements(caches as u64));
        group.bench_function(format!("{caches}_caches_24h"), |b| {
            b.iter(|| cachesim::run(black_box(&config), &timeline, &model))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fleet_stepping, bench_cache_tier);
criterion_main!(benches);
