//! Micro-benchmarks of the from-scratch crypto primitives.
//!
//! These bound the per-message costs of the protocol simulations: every
//! vote/timeout/signature record is one Ed25519 operation, and document
//! digests are SHA-256 over megabyte inputs.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use partialtor_crypto::{sha256, sha512, SigningKey};
use std::hint::black_box;

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [1_024usize, 65_536, 1_048_576] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("{size}B"), |b| {
            b.iter(|| sha256::digest(black_box(&data)))
        });
    }
    group.finish();
}

fn bench_sha512(c: &mut Criterion) {
    let data = vec![0xcdu8; 65_536];
    let mut group = c.benchmark_group("sha512");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("64KiB", |b| b.iter(|| sha512::digest(black_box(&data))));
    group.finish();
}

fn bench_ed25519(c: &mut Criterion) {
    let key = SigningKey::from_seed([42u8; 32]);
    let message = b"consensus document digest ................";
    let signature = key.sign(message);
    let public = key.verifying_key();

    c.bench_function("ed25519/sign", |b| b.iter(|| key.sign(black_box(message))));
    c.bench_function("ed25519/verify", |b| {
        b.iter(|| public.verify(black_box(message), black_box(&signature)))
    });
    c.bench_function("ed25519/keygen", |b| {
        b.iter_batched(
            || [7u8; 32],
            |seed| SigningKey::from_seed(black_box(seed)),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_sha256, bench_sha512, bench_ed25519);
criterion_main!(benches);
