//! Regenerates the §4.3 attack-cost table ($0.074/run, $53.28/month).

use partialtor::experiments::cost;

fn main() {
    let result = cost::run_experiment();
    print!("{}", cost::render(&result));
}
