//! Regenerates Fig. 11: ICPS recovery time after a complete 5-minute
//! outage of five authorities.

use partialtor::experiments::fig11_recovery;
use partialtor_bench::{arg_u64, REPORT_SEED};

fn main() {
    let step = arg_u64("--step", 1_000);
    let result = fig11_recovery::run_experiment(REPORT_SEED, step);
    print!("{}", fig11_recovery::render(&result));
}
