//! Regenerates Fig. 10: consensus latency across bandwidths and relay
//! counts for all three protocols. `--step 1000` (default) gives the
//! paper's resolution.

use partialtor::experiments::fig10_latency;
use partialtor_bench::{arg_u64, REPORT_SEED};

fn main() {
    let step = arg_u64("--step", 1_000);
    let result = fig10_latency::run_experiment(REPORT_SEED, step);
    print!("{}", fig10_latency::render(&result));
}
