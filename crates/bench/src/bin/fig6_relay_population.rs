//! Regenerates Fig. 6: the Tor relay population series (mean 7141.79).

use partialtor::experiments::fig6_relays;

fn main() {
    let result = fig6_relays::run_experiment();
    print!("{}", fig6_relays::render(&result));
}
