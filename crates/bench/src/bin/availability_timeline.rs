//! The headline claim as a timeline: sustained hourly 5-minute DDoS
//! windows kill the network in 3 hours under the current protocol; the
//! ICPS protocol keeps it up.

use partialtor::experiments::availability;
use partialtor_bench::{arg_u64, REPORT_SEED};

fn main() {
    let hours = arg_u64("--hours", 6);
    let results = availability::run_experiment(hours, REPORT_SEED);
    print!("{}", availability::render(&results));
}
