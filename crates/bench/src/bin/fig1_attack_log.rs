//! Regenerates Fig. 1: the authority log while 5 authorities are DDoSed.

use partialtor::experiments::fig1_attack_log;
use partialtor_bench::REPORT_SEED;

fn main() {
    let result = fig1_attack_log::run_experiment(REPORT_SEED);
    print!("{}", fig1_attack_log::render(&result));
}
