//! `bench_summary` — folds the criterion harness's machine-readable
//! output into the committed perf-trajectory file.
//!
//! ```text
//! CRITERION_OUT=/tmp/bench.jsonl cargo bench
//! bench_summary /tmp/bench.jsonl -o BENCH_core.json
//! ```
//!
//! The input is the JSONL the vendored criterion shim appends when
//! `CRITERION_OUT` is set: one flat object per benchmark with `id`,
//! `samples`, `mean_secs`, `min_secs`, `max_secs`. Re-runs append, so
//! the summarizer keeps the **last** line per id. The output is one
//! JSON document, one benchmark per line, sorted by id — diff-friendly
//! for the committed `BENCH_core.json`.
//!
//! `--check BASELINE` turns the tool into a regression gate instead of
//! a writer: every baseline bench present in the fresh run must stay
//! within its per-bench noise tolerance of the committed mean;
//! baseline benches absent from the run are skipped (CI checks a
//! bench-target subset). The tolerance floor is `--tolerance FRAC`
//! (default 0.30, i.e. ±30%), widened per bench to the larger of the
//! committed and fresh relative sample spreads `(max-min)/mean` —
//! tiny allocation-bound benches are bimodal across processes and
//! their own spread is the honest noise estimate. Long benches are
//! the noisy ones on shared CI runners, so `--max-mean-secs SECS`
//! restricts the gate to the stable fast group (baseline means at or
//! below the cutoff); the rest are reported but never fail the check.
//! Exits nonzero on any regression.

use partialtor::json::Json;
use std::collections::BTreeMap;

/// One benchmark's folded timings.
struct BenchRow {
    samples: u64,
    mean_secs: f64,
    min_secs: f64,
    max_secs: f64,
}

/// Extracts a string field from a flat single-line JSON object (the
/// shim's ids never contain escaped quotes).
fn field_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    Some(rest[..rest.find('"')?].to_string())
}

/// Extracts a numeric field from a flat single-line JSON object.
fn field_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn parse_line(line: &str) -> Option<(String, BenchRow)> {
    Some((
        field_str(line, "id")?,
        BenchRow {
            samples: field_num(line, "samples")? as u64,
            mean_secs: field_num(line, "mean_secs")?,
            min_secs: field_num(line, "min_secs")?,
            max_secs: field_num(line, "max_secs")?,
        },
    ))
}

fn render(rows: &BTreeMap<String, BenchRow>) -> String {
    let mut out = String::from("{\n\"benches\": [\n");
    for (i, (id, row)) in rows.iter().enumerate() {
        let bench = Json::Obj(vec![
            ("id".to_string(), Json::str(id.clone())),
            ("samples".to_string(), Json::from(row.samples)),
            ("mean_secs".to_string(), Json::from(row.mean_secs)),
            ("min_secs".to_string(), Json::from(row.min_secs)),
            ("max_secs".to_string(), Json::from(row.max_secs)),
        ]);
        out.push_str(&bench.render());
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str(&format!("],\n\"total_benches\": {}\n}}\n", rows.len()));
    out
}

/// Compares the fresh rows against a committed baseline; returns the
/// process exit code. Only baseline benches with `mean_secs <= cutoff`
/// gate the run; slower ones are reported informationally.
fn check(
    rows: &BTreeMap<String, BenchRow>,
    baseline_path: &str,
    tolerance: f64,
    cutoff: f64,
) -> i32 {
    let baseline_text = match std::fs::read_to_string(baseline_path) {
        Ok(text) => text,
        Err(error) => {
            eprintln!("bench_summary: cannot read baseline {baseline_path:?}: {error}");
            return 2;
        }
    };
    // (id, committed mean, committed relative spread (max-min)/mean).
    let baseline: Vec<(String, f64, f64)> = baseline_text
        .lines()
        .filter_map(|line| {
            let id = field_str(line, "id")?;
            let mean = field_num(line, "mean_secs")?;
            let spread = if mean > 0.0 {
                (field_num(line, "max_secs")? - field_num(line, "min_secs")?) / mean
            } else {
                0.0
            };
            Some((id, mean, spread))
        })
        .collect();
    if baseline.is_empty() {
        eprintln!("bench_summary: baseline {baseline_path:?} held no benchmark lines");
        return 2;
    }
    let mut failures = Vec::new();
    let mut gated = 0usize;
    for (id, committed_mean, spread) in &baseline {
        let enforced = *committed_mean <= cutoff;
        let Some(fresh) = rows.get(id) else {
            // CI checks a bench-target subset, so committed benches from
            // targets that didn't run are expected to be absent.
            println!("  skip  {id}: not in this run");
            continue;
        };
        // Per-bench noise tolerance: the flag sets the floor, but a
        // bench whose samples spread wider than that — in the committed
        // baseline or in this run (tiny allocation-bound benches are
        // bimodal across processes) — gets that observed spread as the
        // allowance instead.
        let fresh_spread = if fresh.mean_secs > 0.0 {
            (fresh.max_secs - fresh.min_secs) / fresh.mean_secs
        } else {
            0.0
        };
        let allowed = tolerance.max(*spread).max(fresh_spread);
        let ratio = fresh.mean_secs / committed_mean;
        let verdict = if ratio > 1.0 + allowed {
            "SLOWER"
        } else if ratio < 1.0 - allowed {
            "faster"
        } else {
            "ok"
        };
        let line = format!(
            "{id}: {:.6}s vs committed {:.6}s ({:+.1}%, allowed ±{:.0}%) {verdict}",
            fresh.mean_secs,
            committed_mean,
            100.0 * (ratio - 1.0),
            100.0 * allowed,
        );
        if enforced {
            gated += 1;
            println!("  gate  {line}");
            if ratio > 1.0 + allowed {
                failures.push(line);
            }
        } else {
            println!("  info  {line}");
        }
    }
    if gated == 0 {
        eprintln!(
            "bench_summary: no baseline bench fell under the {cutoff}s cutoff — nothing gated"
        );
        return 2;
    }
    if failures.is_empty() {
        println!(
            "check passed: {gated} gated bench(es) within per-bench tolerance (floor ±{:.0}%) of {baseline_path}",
            100.0 * tolerance
        );
        0
    } else {
        eprintln!(
            "bench_summary: {} regression(s) beyond per-bench tolerance (floor ±{:.0}%):",
            failures.len(),
            100.0 * tolerance
        );
        for failure in &failures {
            eprintln!("  - {failure}");
        }
        1
    }
}

const USAGE: &str = "usage: bench_summary <criterion-out.jsonl> [-o BENCH_core.json]
       bench_summary <criterion-out.jsonl> --check BENCH_core.json
                     [--tolerance FRAC] [--max-mean-secs SECS]";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut input = None;
    let mut output = "BENCH_core.json".to_string();
    let mut baseline = None;
    let mut tolerance = 0.30;
    let mut cutoff = f64::INFINITY;
    let mut tokens = args.iter();
    let value = |tokens: &mut std::slice::Iter<String>, flag: &str| match tokens.next() {
        Some(v) => v.clone(),
        None => {
            eprintln!("bench_summary: {flag} expects a value");
            std::process::exit(2);
        }
    };
    while let Some(token) = tokens.next() {
        match token.as_str() {
            "-h" | "--help" => {
                println!("{USAGE}");
                return;
            }
            "-o" | "--output" => output = value(&mut tokens, "-o"),
            "--check" => baseline = Some(value(&mut tokens, "--check")),
            "--tolerance" => {
                let raw = value(&mut tokens, "--tolerance");
                tolerance = match raw.parse::<f64>() {
                    Ok(frac) if frac > 0.0 => frac,
                    _ => {
                        eprintln!("bench_summary: --tolerance expects a positive fraction");
                        std::process::exit(2);
                    }
                };
            }
            "--max-mean-secs" => {
                let raw = value(&mut tokens, "--max-mean-secs");
                cutoff = match raw.parse::<f64>() {
                    Ok(secs) if secs > 0.0 => secs,
                    _ => {
                        eprintln!("bench_summary: --max-mean-secs expects positive seconds");
                        std::process::exit(2);
                    }
                };
            }
            path if input.is_none() => input = Some(path.to_string()),
            extra => {
                eprintln!("bench_summary: unexpected argument {extra:?}");
                std::process::exit(2);
            }
        }
    }
    let Some(input) = input else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };
    let text = match std::fs::read_to_string(&input) {
        Ok(text) => text,
        Err(error) => {
            eprintln!("bench_summary: cannot read {input:?}: {error}");
            std::process::exit(2);
        }
    };
    let mut rows: BTreeMap<String, BenchRow> = BTreeMap::new();
    let mut skipped = 0usize;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        match parse_line(line) {
            Some((id, row)) => {
                rows.insert(id, row);
            }
            None => skipped += 1,
        }
    }
    if skipped > 0 {
        eprintln!("bench_summary: skipped {skipped} unparseable lines");
    }
    if rows.is_empty() {
        eprintln!("bench_summary: {input:?} held no benchmark lines");
        std::process::exit(2);
    }
    if let Some(baseline_path) = baseline {
        std::process::exit(check(&rows, &baseline_path, tolerance, cutoff));
    }
    // A bench that was committed but is absent from this run usually
    // means a bench target silently stopped being built or a group was
    // renamed — warn rather than quietly shrinking the trajectory.
    if let Ok(existing) = std::fs::read_to_string(&output) {
        let missing: Vec<String> = existing
            .lines()
            .filter_map(|line| field_str(line, "id"))
            .filter(|id| !rows.contains_key(id))
            .collect();
        if !missing.is_empty() {
            eprintln!(
                "bench_summary: warning: {} committed bench(es) missing from this run:",
                missing.len()
            );
            for id in missing {
                eprintln!("  - {id}");
            }
        }
    }
    if let Err(error) = std::fs::write(&output, render(&rows)) {
        eprintln!("bench_summary: cannot write {output:?}: {error}");
        std::process::exit(2);
    }
    println!("wrote {} benches to {output}", rows.len());
}
