//! `bench_summary` — folds the criterion harness's machine-readable
//! output into the committed perf-trajectory file.
//!
//! ```text
//! CRITERION_OUT=/tmp/bench.jsonl cargo bench
//! bench_summary /tmp/bench.jsonl -o BENCH_core.json
//! ```
//!
//! The input is the JSONL the vendored criterion shim appends when
//! `CRITERION_OUT` is set: one flat object per benchmark with `id`,
//! `samples`, `mean_secs`, `min_secs`, `max_secs`. Re-runs append, so
//! the summarizer keeps the **last** line per id. The output is one
//! JSON document, one benchmark per line, sorted by id — diff-friendly
//! for the committed `BENCH_core.json`.

use partialtor::json::Json;
use std::collections::BTreeMap;

/// One benchmark's folded timings.
struct BenchRow {
    samples: u64,
    mean_secs: f64,
    min_secs: f64,
    max_secs: f64,
}

/// Extracts a string field from a flat single-line JSON object (the
/// shim's ids never contain escaped quotes).
fn field_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    Some(rest[..rest.find('"')?].to_string())
}

/// Extracts a numeric field from a flat single-line JSON object.
fn field_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn parse_line(line: &str) -> Option<(String, BenchRow)> {
    Some((
        field_str(line, "id")?,
        BenchRow {
            samples: field_num(line, "samples")? as u64,
            mean_secs: field_num(line, "mean_secs")?,
            min_secs: field_num(line, "min_secs")?,
            max_secs: field_num(line, "max_secs")?,
        },
    ))
}

fn render(rows: &BTreeMap<String, BenchRow>) -> String {
    let mut out = String::from("{\n\"benches\": [\n");
    for (i, (id, row)) in rows.iter().enumerate() {
        let bench = Json::Obj(vec![
            ("id".to_string(), Json::str(id.clone())),
            ("samples".to_string(), Json::from(row.samples)),
            ("mean_secs".to_string(), Json::from(row.mean_secs)),
            ("min_secs".to_string(), Json::from(row.min_secs)),
            ("max_secs".to_string(), Json::from(row.max_secs)),
        ]);
        out.push_str(&bench.render());
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str(&format!("],\n\"total_benches\": {}\n}}\n", rows.len()));
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut input = None;
    let mut output = "BENCH_core.json".to_string();
    let mut tokens = args.iter();
    while let Some(token) = tokens.next() {
        match token.as_str() {
            "-h" | "--help" => {
                println!("usage: bench_summary <criterion-out.jsonl> [-o BENCH_core.json]");
                return;
            }
            "-o" | "--output" => match tokens.next() {
                Some(path) => output = path.clone(),
                None => {
                    eprintln!("bench_summary: -o expects a path");
                    std::process::exit(2);
                }
            },
            path if input.is_none() => input = Some(path.to_string()),
            extra => {
                eprintln!("bench_summary: unexpected argument {extra:?}");
                std::process::exit(2);
            }
        }
    }
    let Some(input) = input else {
        eprintln!("usage: bench_summary <criterion-out.jsonl> [-o BENCH_core.json]");
        std::process::exit(2);
    };
    let text = match std::fs::read_to_string(&input) {
        Ok(text) => text,
        Err(error) => {
            eprintln!("bench_summary: cannot read {input:?}: {error}");
            std::process::exit(2);
        }
    };
    let mut rows: BTreeMap<String, BenchRow> = BTreeMap::new();
    let mut skipped = 0usize;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        match parse_line(line) {
            Some((id, row)) => {
                rows.insert(id, row);
            }
            None => skipped += 1,
        }
    }
    if skipped > 0 {
        eprintln!("bench_summary: skipped {skipped} unparseable lines");
    }
    if rows.is_empty() {
        eprintln!("bench_summary: {input:?} held no benchmark lines");
        std::process::exit(2);
    }
    // A bench that was committed but is absent from this run usually
    // means a bench target silently stopped being built or a group was
    // renamed — warn rather than quietly shrinking the trajectory.
    if let Ok(existing) = std::fs::read_to_string(&output) {
        let missing: Vec<String> = existing
            .lines()
            .filter_map(|line| field_str(line, "id"))
            .filter(|id| !rows.contains_key(id))
            .collect();
        if !missing.is_empty() {
            eprintln!(
                "bench_summary: warning: {} committed bench(es) missing from this run:",
                missing.len()
            );
            for id in missing {
                eprintln!("  - {id}");
            }
        }
    }
    if let Err(error) = std::fs::write(&output, render(&rows)) {
        eprintln!("bench_summary: cannot write {output:?}: {error}");
        std::process::exit(2);
    }
    println!("wrote {} benches to {output}", rows.len());
}
