//! Regenerates Table 1: measured communication complexity with fitted
//! growth exponents.

use partialtor::experiments::table1_complexity;
use partialtor_bench::REPORT_SEED;

fn main() {
    let result = table1_complexity::run_experiment(REPORT_SEED);
    print!("{}", table1_complexity::render(&result));
}
