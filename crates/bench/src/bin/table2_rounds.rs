//! Regenerates Table 2: round complexity of each ICPS sub-protocol.

use partialtor::experiments::table2_rounds;
use partialtor_bench::REPORT_SEED;

fn main() {
    let result = table2_rounds::run_experiment(REPORT_SEED);
    print!("{}", table2_rounds::render(&result));
}
