//! Consensus-diff bandwidth savings (proposal 140) across churn rates.

use partialtor::experiments::diff_savings;
use partialtor_bench::REPORT_SEED;

fn main() {
    print!(
        "{}",
        diff_savings::render(&diff_savings::run_experiment(REPORT_SEED))
    );
}
