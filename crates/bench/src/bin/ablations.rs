//! Runs the three design-choice ablations: timeout scaling, pulsed
//! attacks, and the aggregation fetch policy.

use partialtor::experiments::ablations;
use partialtor_bench::REPORT_SEED;

fn main() {
    print!(
        "{}",
        ablations::render_timeout(&ablations::timeout_scaling(REPORT_SEED))
    );
    println!();
    print!(
        "{}",
        ablations::render_pulse(&ablations::pulse_sweep(REPORT_SEED))
    );
    println!();
    print!(
        "{}",
        ablations::render_fetch(&ablations::fetch_policy_comparison(REPORT_SEED))
    );
}
