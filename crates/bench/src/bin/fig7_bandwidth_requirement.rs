//! Regenerates Fig. 7: minimum victim bandwidth for the current protocol
//! to survive, vs. relay count.

use partialtor::experiments::fig7_bandwidth;
use partialtor_bench::REPORT_SEED;

fn main() {
    let result = fig7_bandwidth::run_experiment(REPORT_SEED);
    print!("{}", fig7_bandwidth::render(&result));
}
