//! `partialtor-bench` — the benchmark harness.
//!
//! One binary per table/figure of the paper (run with
//! `cargo run -p partialtor-bench --release --bin <name>`):
//!
//! | binary | regenerates |
//! |---|---|
//! | `fig1_attack_log` | Fig. 1 — authority log under attack |
//! | `fig6_relay_population` | Fig. 6 — relay count series |
//! | `fig7_bandwidth_requirement` | Fig. 7 — bandwidth requirement sweep |
//! | `fig10_latency` | Fig. 10 — latency sweeps, all protocols |
//! | `fig11_recovery` | Fig. 11 — post-attack recovery |
//! | `table1_complexity` | Table 1 — measured communication complexity |
//! | `table2_rounds` | Table 2 — sub-protocol round counts |
//! | `cost_model` | §4.3 — attack cost table |
//!
//! Criterion micro-benchmarks live under `benches/`.

/// Parses a `--step <n>` style override from argv, with a default.
///
/// Experiments accept a relay-count step so CI can run them coarsely
/// (`--step 3000`) while the paper-resolution default stays 1000.
pub fn arg_u64(name: &str, default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The seed shared by the reported experiment runs.
pub const REPORT_SEED: u64 = 42;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_parsing_default() {
        assert_eq!(arg_u64("--definitely-not-passed", 7), 7);
    }
}
