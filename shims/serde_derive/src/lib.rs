//! No-op derive macros backing the vendored `serde` shim.
//!
//! The shim's `Serialize`/`Deserialize` traits are blanket-implemented
//! for every type, so the derives only need to exist and expand to
//! nothing for `#[derive(Serialize)]` to compile.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
