//! Vendored stand-in for `serde`.
//!
//! The workspace builds without network access, so the real serde cannot
//! be fetched. The experiment drivers only use `#[derive(Serialize)]` as
//! a structural marker (rows are rendered through hand-written `render`
//! functions, never serialized generically), so the shim provides:
//!
//! * a [`Serialize`] marker trait blanket-implemented for every type, and
//! * no-op `Serialize`/`Deserialize` derives re-exported from
//!   `serde_derive`.
//!
//! Swapping in the real serde later is a one-line change in the root
//! `[workspace.dependencies]` table.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize {}

impl<T: ?Sized> Deserialize for T {}

pub use serde_derive::{Deserialize, Serialize};
