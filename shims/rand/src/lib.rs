//! Vendored stand-in for `rand` 0.8.
//!
//! The build environment has no network access, so this shim provides
//! the subset of the `rand` API the workspace uses, with a deterministic
//! xoshiro256++ generator behind [`rngs::StdRng`]. Stream values differ
//! from the real `rand::rngs::StdRng` (ChaCha12), which is fine: every
//! consumer seeds explicitly and asserts semantic properties, not exact
//! stream values.

use std::ops::{Range, RangeInclusive};

/// Core random-number generation, mirroring `rand::RngCore`.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    type Seed;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self;
}

/// Uniform sampling from a range, the receiver side of
/// [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types samplable from the "standard" distribution ([`Rng::gen`]).
pub trait SampleStandard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl SampleStandard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleStandard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

impl<T: SampleStandard + Default + Copy, const N: usize> SampleStandard for [T; N] {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [T::default(); N];
        for slot in &mut out {
            *slot = T::sample_standard(rng);
        }
        out
    }
}

/// Maps a raw `u64` onto `[0, 1)` with 53 bits of precision.
fn unit_f64(raw: u64) -> f64 {
    (raw >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = u128::from(rng.next_u64()) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = u128::from(rng.next_u64()) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                self.start + (unit_f64(rng.next_u64()) as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "empty range in gen_range");
                start + (unit_f64(rng.next_u64()) as $t) * (end - start)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: SampleStandard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for
    /// `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (slot, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                *slot = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // A pathological all-zero seed would freeze xoshiro; reseed it
            // through splitmix like `seed_from_u64(0)`.
            if s == [0; 4] {
                return Self::seed_from_u64(0);
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(
            xs,
            (0..32)
                .map(|_| StdRng::seed_from_u64(8).next_u64())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen_range(-1.5..1.5);
            assert!((-1.5..1.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 13]);
    }
}
