//! Vendored stand-in for `criterion` 0.5.
//!
//! Mirrors the API surface the workspace's benches use. Behaviour follows
//! criterion's contract with cargo:
//!
//! * `cargo bench` passes `--bench` to the harness — each registered
//!   function is warmed up once and then timed over `sample_size`
//!   iterations, reporting mean/min/max wall-clock per iteration.
//! * `cargo test` runs the harness with no `--bench` flag — each
//!   function executes exactly once, so benches stay cheap smoke tests.
//!
//! When the `CRITERION_OUT` environment variable names a file, bench
//! mode also appends one JSON line per benchmark (id, sample count,
//! mean/min/max seconds) for the workspace's bench summarizer.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-benchmark throughput annotation (printed alongside timings).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Batch sizing for [`Bencher::iter_batched`]. The shim times whole
/// batches of one, so the variants only preserve source compatibility.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

/// Timing collector handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }

    pub fn iter_batched_ref<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

/// Top-level harness state, mirroring `criterion::Criterion`.
pub struct Criterion {
    bench_mode: bool,
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            bench_mode: std::env::args().any(|a| a == "--bench"),
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Builds the harness from argv (used by `criterion_main!`).
    pub fn from_args() -> Self {
        Criterion::default()
    }

    pub fn sample_size(&mut self, n: u64) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id.into(), self.bench_mode, self.sample_size, None, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }

    /// Prints the closing line (`criterion_main!` calls this).
    pub fn final_summary(&mut self) {
        if self.bench_mode {
            println!("benchmark run complete");
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<u64>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: u64) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_one(full, self.criterion.bench_mode, samples, self.throughput, f);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: String,
    bench_mode: bool,
    samples: u64,
    throughput: Option<Throughput>,
    mut f: F,
) {
    if !bench_mode {
        // Test mode (`cargo test`): run once so the bench is exercised
        // without dominating the suite's runtime.
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        println!("bench-test {id} ... ok ({:?})", bencher.elapsed);
        return;
    }
    // Warm-up pass, then the timed samples.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let mut per_iter: Vec<f64> = Vec::with_capacity(samples as usize);
    for _ in 0..samples {
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        per_iter.push(bencher.elapsed.as_secs_f64());
    }
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().cloned().fold(0.0f64, f64::max);
    write_machine_line(&id, samples, mean, min, max);
    let rate = match throughput {
        Some(Throughput::Bytes(bytes)) if mean > 0.0 => {
            format!("  {:.1} MiB/s", bytes as f64 / mean / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(elems)) if mean > 0.0 => {
            format!("  {:.1} elem/s", elems as f64 / mean)
        }
        _ => String::new(),
    };
    println!(
        "{id:<40} mean {:>12} min {:>12} max {:>12}{rate}",
        format_secs(mean),
        format_secs(min),
        format_secs(max),
    );
}

/// Appends one JSON line per benchmark to the file named by
/// `CRITERION_OUT` (unset = no machine output). The workspace's bench
/// summarizer folds these lines into `BENCH_core.json`.
fn write_machine_line(id: &str, samples: u64, mean: f64, min: f64, max: f64) {
    let Ok(path) = std::env::var("CRITERION_OUT") else {
        return;
    };
    use std::io::Write;
    let escaped: String = id
        .chars()
        .map(|c| match c {
            '"' => "\\\"".to_string(),
            '\\' => "\\\\".to_string(),
            c => c.to_string(),
        })
        .collect();
    let line = format!(
        "{{\"id\":\"{escaped}\",\"samples\":{samples},\"mean_secs\":{mean},\"min_secs\":{min},\"max_secs\":{max}}}\n"
    );
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut file| file.write_all(line.as_bytes()));
    if let Err(error) = appended {
        eprintln!("criterion shim: cannot append to {path}: {error}");
    }
}

fn format_secs(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Declares a benchmark group function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(criterion: &mut $crate::Criterion) {
            $( $target(criterion); )+
        }
    };
}

/// Declares the harness `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::from_args();
            $( $group(&mut criterion); )+
            criterion.final_summary();
        }
    };
}
