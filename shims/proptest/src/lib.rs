//! Vendored stand-in for `proptest`.
//!
//! The build environment has no network access, so this crate implements
//! the slice of the proptest API the workspace's property tests use: the
//! [`proptest!`] macro (with `#![proptest_config(..)]`), `any::<T>()`,
//! integer-range and tuple strategies, `proptest::collection::vec`,
//! `proptest::sample::Index`, and the `prop_assert*` macros.
//!
//! Sampling is deterministic: each generated test derives its RNG seed
//! from the test name and case index, so failures reproduce exactly on
//! rerun. There is no shrinking — a failing case panics with the
//! standard assertion message and the values visible in it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Per-block configuration, mirroring `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of sampled cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A value generator, mirroring `proptest::strategy::Strategy` minus
/// shrinking.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

/// Types with a canonical "anything" strategy ([`any`]).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64);

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut StdRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// `proptest::prelude::any` — the canonical strategy for a type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Always-the-same-value strategy (`proptest::strategy::Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_strategy_for_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_for_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_strategy_for_tuples {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_strategy_for_tuples! {
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
}

/// Collection-length specification accepted by [`collection::vec`].
#[derive(Clone, Debug)]
pub struct SizeRange {
    start: usize,
    end_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            start: exact,
            end_inclusive: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty size range");
        SizeRange {
            start: range.start,
            end_inclusive: range.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> Self {
        SizeRange {
            start: *range.start(),
            end_inclusive: *range.end(),
        }
    }
}

pub mod collection {
    use super::{SizeRange, StdRng, Strategy};
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with a sampled length.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.start..=self.size.end_inclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod sample {
    use super::{Arbitrary, StdRng};
    use rand::Rng;

    /// An index into a not-yet-known collection
    /// (`proptest::sample::Index`).
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct Index {
        raw: usize,
    }

    impl Index {
        /// Projects onto `0..len`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on an empty collection");
            self.raw % len
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut StdRng) -> Self {
            Index { raw: rng.gen() }
        }
    }
}

/// Derives the deterministic RNG for one generated test case.
#[doc(hidden)]
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    // FNV-1a over the test name, mixed with the case index.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(hash ^ (u64::from(case) << 32 | u64::from(case)))
}

/// `proptest::prop_assert!` — panics with case context on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*) };
}

/// `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_ne!($left, $right, $($fmt)*) };
}

/// The `proptest!` test-generation macro.
///
/// Supports the block forms the workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     #[test]
///     fn my_property(x in 0u64..100, data in proptest::collection::vec(any::<u8>(), 0..64)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($config); $($rest)*);
    };
    (@funcs ($config:expr); $(
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut proptest_case_rng =
                        $crate::case_rng(concat!(module_path!(), "::", stringify!($name)), case);
                    $(
                        let $arg = $crate::Strategy::sample(&($strategy), &mut proptest_case_rng);
                    )*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()); $($rest)*);
    };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_vecs_sample_in_bounds(
            x in 3u64..9,
            bytes in crate::collection::vec(any::<u8>(), 2..5),
            idx in any::<crate::sample::Index>(),
        ) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((2..5).contains(&bytes.len()));
            prop_assert!(idx.index(bytes.len()) < bytes.len());
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(pair in (0usize..4, 0i64..=3)) {
            prop_assert!(pair.0 < 4);
            prop_assert!((0..=3).contains(&pair.1));
        }
    }

    #[test]
    fn case_rng_is_deterministic() {
        use rand::RngCore;
        let a = crate::case_rng("t", 3).next_u64();
        let b = crate::case_rng("t", 3).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, crate::case_rng("t", 4).next_u64());
    }
}
