//! `partialtor-repro` — workspace façade.
//!
//! Re-exports the whole reproduction of *"Five Minutes of DDoS Brings
//! down Tor"* (EUROSYS '26) behind one crate, so examples and downstream
//! users can depend on a single name:
//!
//! * [`crypto`] — SHA-2 and Ed25519 from scratch;
//! * [`simnet`] — the deterministic discrete-event network simulator;
//! * [`tordoc`] — votes, consensus documents and the Fig. 2 aggregation;
//! * [`consensus`] — the view-based BFT agreement engine;
//! * [`dirdist`] — the distribution layer: directory caches and
//!   cohort-aggregated client fleets downstream of any protocol run;
//! * [`core`] — the three directory protocols, the attack and the
//!   experiment drivers.
//!
//! # Examples
//!
//! ```
//! use partialtor_repro::core::{run, ProtocolKind, Scenario};
//!
//! let scenario = Scenario { relays: 500, ..Scenario::default() };
//! let report = run(ProtocolKind::Icps, &scenario);
//! assert!(report.success);
//! ```

pub use partialtor as core;
pub use partialtor_consensus as consensus;
pub use partialtor_crypto as crypto;
pub use partialtor_dirdist as dirdist;
pub use partialtor_simnet as simnet;
pub use partialtor_tordoc as tordoc;
